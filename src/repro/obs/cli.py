"""``python -m repro obs`` — observability subcommands.

    python -m repro obs summary [--quick] [--report out.json]
    python -m repro obs dump --scenario central3 -o trace.jsonl
    python -m repro obs diff baseline.json current.json

``summary`` runs the instrumented Figure 5 workload and prints per-link
and per-compare metrics (optionally saving the RunReport JSON and a
Prometheus text snapshot).  ``dump`` writes the retained trace records
of one instrumented scenario as JSON lines.  ``diff`` compares two run
reports under regression watch rules and exits non-zero when a watched
counter breaches its threshold — this is the CI gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _cmd_summary(args: argparse.Namespace) -> int:
    from repro.obs.summary import build_run_report, render_summary

    report, runs = build_run_report(
        quick=args.quick,
        seed=args.seed,
        sample_rate=args.sample,
        duration=args.duration,
        train=args.train,
    )
    print(render_summary(report))
    if args.report:
        report.save(args.report)
        print(f"\n[run report written to {args.report}]")
    if args.prometheus:
        with open(args.prometheus, "w", encoding="utf-8") as fh:
            for run in runs:
                fh.write(f"# scenario {run.variant}\n")
                fh.write(run.registry.render_prometheus())
        print(f"[prometheus snapshot written to {args.prometheus}]")
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    from repro.obs.report import dump_records_jsonl
    from repro.obs.summary import run_instrumented_scenario

    run = run_instrumented_scenario(
        args.scenario,
        duration=args.duration or 0.01,
        seed=args.seed,
        sample_rate=args.sample,
    )
    records = run.testbed.network.trace.select(topic=args.topic or None)
    if args.output and args.output != "-":
        with open(args.output, "w", encoding="utf-8") as fh:
            count = dump_records_jsonl(records, fh)
        print(f"[{count} records written to {args.output}]", file=sys.stderr)
    else:
        dump_records_jsonl(records, sys.stdout)
    return 0


def _load_watches(path: str):
    """Watch rules from a JSON list of {pattern, max_ratio, max_increase}."""
    from repro.obs.report import WatchRule

    with open(path, "r", encoding="utf-8") as fh:
        entries = json.load(fh)
    return [WatchRule(**entry) for entry in entries]


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.obs.report import DEFAULT_WATCHES, RunReport, diff_reports

    base = RunReport.load(args.base)
    new = RunReport.load(args.new)
    watches = _load_watches(args.watch) if args.watch else DEFAULT_WATCHES
    findings = diff_reports(base, new, watches)
    breached = [f for f in findings if f.breached]
    shown = findings if args.verbose else breached
    for finding in shown:
        print(finding.describe())
    print(
        f"compared {len(findings)} watched samples "
        f"({base.name!r} -> {new.name!r}): "
        + (f"{len(breached)} BREACHED" if breached else "all within thresholds")
    )
    return 1 if breached else 0


def obs_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="Observability: metric summaries, trace dumps, report diffs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser("summary", help="instrumented fig5 run + metrics")
    p_summary.add_argument("--quick", action="store_true",
                           help="fewer scenarios, shorter flows")
    p_summary.add_argument("--seed", type=int, default=1)
    p_summary.add_argument("--sample", type=float, default=1.0, metavar="RATE",
                           help="packet-trace sampling rate in [0,1] (default 1.0)")
    p_summary.add_argument("--duration", type=float, default=None, metavar="SECONDS",
                           help="per-scenario flow duration")
    p_summary.add_argument("--train", type=int, default=1, metavar="N",
                           help="packets per train for the batch tier "
                                "(default 1: per-packet path)")
    p_summary.add_argument("--report", metavar="PATH",
                           help="write the RunReport JSON here")
    p_summary.add_argument("--prometheus", metavar="PATH",
                           help="write a Prometheus text snapshot here")
    p_summary.set_defaults(func=_cmd_summary)

    p_dump = sub.add_parser("dump", help="dump trace records as JSON lines")
    p_dump.add_argument("--scenario", default="central3",
                        help="testbed variant to run (default central3)")
    p_dump.add_argument("--topic", default=None, metavar="TOPIC",
                        help='exact topic or "prefix*" filter')
    p_dump.add_argument("--seed", type=int, default=1)
    p_dump.add_argument("--sample", type=float, default=1.0)
    p_dump.add_argument("--duration", type=float, default=None)
    p_dump.add_argument("-o", "--output", default="-", metavar="PATH",
                        help="output file (default stdout)")
    p_dump.set_defaults(func=_cmd_dump)

    p_diff = sub.add_parser("diff", help="compare two run reports")
    p_diff.add_argument("base", help="baseline RunReport JSON")
    p_diff.add_argument("new", help="candidate RunReport JSON")
    p_diff.add_argument("--watch", metavar="PATH",
                        help="JSON list of watch rules (default: built-in set)")
    p_diff.add_argument("-v", "--verbose", action="store_true",
                        help="print non-breached findings too")
    p_diff.set_defaults(func=_cmd_diff)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(obs_main())
