"""``python -m repro obs`` — observability subcommands.

    python -m repro obs summary [--quick] [--report out.json]
    python -m repro obs dump --scenario central3 -o trace.jsonl
    python -m repro obs diff baseline.json current.json
    python -m repro obs trace 3 --ctrl

``summary`` runs the instrumented Figure 5 workload and prints per-link
and per-compare metrics (optionally saving the RunReport JSON and a
Prometheus text snapshot).  ``dump`` writes the retained trace records
of one instrumented scenario as JSON lines.  ``diff`` compares two run
reports under regression watch rules and exits non-zero when a watched
counter breaches its threshold — this is the CI gate.  ``trace``
reconstructs one marked packet's cross-layer story (data-plane hops,
compare votes, control-plane voting, overlapping fault windows).

Exit codes (all subcommands): 0 success; 1 a watched counter breached
(``diff``) or the requested trace id does not exist (``trace``); 2
usage error (argparse).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional


def _cmd_summary(args: argparse.Namespace) -> int:
    from repro.obs.summary import build_run_report, render_summary

    report, runs = build_run_report(
        quick=args.quick,
        seed=args.seed,
        sample_rate=args.sample,
        duration=args.duration,
        train=args.train,
    )
    print(render_summary(report))
    if args.report:
        report.save(args.report)
        print(f"\n[run report written to {args.report}]")
    if args.prometheus:
        with open(args.prometheus, "w", encoding="utf-8") as fh:
            for run in runs:
                fh.write(f"# scenario {run.variant}\n")
                fh.write(run.registry.render_prometheus())
        print(f"[prometheus snapshot written to {args.prometheus}]")
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    from repro.obs.report import dump_records_jsonl
    from repro.obs.summary import run_instrumented_scenario

    run = run_instrumented_scenario(
        args.scenario,
        duration=args.duration or 0.01,
        seed=args.seed,
        sample_rate=args.sample,
    )
    records = run.testbed.network.trace.select(topic=args.topic or None)
    if args.output and args.output != "-":
        with open(args.output, "w", encoding="utf-8") as fh:
            count = dump_records_jsonl(records, fh)
        print(f"[{count} records written to {args.output}]", file=sys.stderr)
    else:
        dump_records_jsonl(records, sys.stdout)
    return 0


def _load_watches(path: str):
    """Watch rules from a JSON list of {pattern, max_ratio, max_increase}."""
    from repro.obs.report import WatchRule

    with open(path, "r", encoding="utf-8") as fh:
        entries = json.load(fh)
    return [WatchRule(**entry) for entry in entries]


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.obs.report import DEFAULT_WATCHES, RunReport, diff_reports

    base = RunReport.load(args.base)
    new = RunReport.load(args.new)
    watches = _load_watches(args.watch) if args.watch else DEFAULT_WATCHES
    findings = diff_reports(base, new, watches)
    breached = [f for f in findings if f.breached]
    if not args.quiet:
        shown = findings if args.verbose else breached
        for finding in shown:
            print(finding.describe())
    # The one-line verdict (and the exit code) survives --quiet: callers
    # must be able to gate on status alone instead of grepping output.
    print(
        f"compared {len(findings)} watched samples "
        f"({base.name!r} -> {new.name!r}): "
        + (f"{len(breached)} BREACHED" if breached else "all within thresholds")
    )
    return 1 if breached else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.spans import cross_layer_story
    from repro.obs.summary import (
        run_instrumented_ctrl_scenario,
        run_instrumented_scenario,
    )

    if args.ctrl:
        run = run_instrumented_ctrl_scenario(
            variant=args.scenario,
            ctrl_k=args.ctrl_k,
            adversary=args.adversary,
            duration=args.duration or 0.005,
            seed=args.seed,
            sample_rate=args.sample,
        )
    else:
        run = run_instrumented_scenario(
            args.scenario,
            duration=args.duration or 0.002,
            seed=args.seed,
            sample_rate=args.sample,
        )
        if args.chaos:
            print("note: --chaos requires --ctrl or a chaos-armed run; "
                  "ignored for the plain scenario", file=sys.stderr)
    tracer = run.tracer
    ids = tracer.trace_ids()
    if args.list or args.trace_id is None:
        stats = tracer.stats()
        print(f"marked {stats['marked']} packet(s), "
              f"{stats['traces']} trajectories indexed")
        preview = ", ".join(str(i) for i in ids[:20])
        more = f" … ({len(ids)} total)" if len(ids) > 20 else ""
        print(f"trace ids: {preview}{more}")
        return 0
    if args.trace_id not in tracer.trajectories():
        preview = ", ".join(str(i) for i in ids[:20])
        print(f"error: no trajectory for trace id {args.trace_id} "
              f"(available: {preview})", file=sys.stderr)
        return 1
    chaos_records = run.testbed.network.trace.select(topic="chaos.*")
    story = cross_layer_story(
        tracer.trajectory(args.trace_id), chaos_records=chaos_records
    )
    layers = sorted({entry["layer"] for entry in story})
    print(f"trace {args.trace_id}: {len(story)} event(s) across "
          f"layers [{', '.join(layers)}]")
    for entry in story:
        data = entry["data"]
        detail = " ".join(
            f"{k}={v}" for k, v in data.items() if k not in ("packet",)
        )
        packet = data.get("packet")
        if packet:
            detail = f"{detail} packet={packet}" if detail else f"packet={packet}"
        print(f"  {entry['time'] * 1e6:10.2f}us  [{entry['layer']:>7}] "
              f"{entry['topic']:<24} {entry['source']:<16} {detail}")
    return 0


def obs_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro obs",
        description="Observability: metric summaries, trace dumps, report diffs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser("summary", help="instrumented fig5 run + metrics")
    p_summary.add_argument("--quick", action="store_true",
                           help="fewer scenarios, shorter flows")
    p_summary.add_argument("--seed", type=int, default=1)
    p_summary.add_argument("--sample", type=float, default=1.0, metavar="RATE",
                           help="packet-trace sampling rate in [0,1] (default 1.0)")
    p_summary.add_argument("--duration", type=float, default=None, metavar="SECONDS",
                           help="per-scenario flow duration")
    p_summary.add_argument("--train", type=int, default=1, metavar="N",
                           help="packets per train for the batch tier "
                                "(default 1: per-packet path)")
    p_summary.add_argument("--report", metavar="PATH",
                           help="write the RunReport JSON here")
    p_summary.add_argument("--prometheus", metavar="PATH",
                           help="write a Prometheus text snapshot here")
    p_summary.set_defaults(func=_cmd_summary)

    p_dump = sub.add_parser("dump", help="dump trace records as JSON lines")
    p_dump.add_argument("--scenario", default="central3",
                        help="testbed variant to run (default central3)")
    p_dump.add_argument("--topic", default=None, metavar="TOPIC",
                        help='exact topic or "prefix*" filter')
    p_dump.add_argument("--seed", type=int, default=1)
    p_dump.add_argument("--sample", type=float, default=1.0)
    p_dump.add_argument("--duration", type=float, default=None)
    p_dump.add_argument("-o", "--output", default="-", metavar="PATH",
                        help="output file (default stdout)")
    p_dump.set_defaults(func=_cmd_dump)

    p_diff = sub.add_parser(
        "diff", help="compare two run reports",
        description="Compare two RunReports under regression watch rules.",
        epilog="exit codes: 0 all watched samples within thresholds; "
               "1 at least one watched counter BREACHED (the one-line "
               "summary and the exit code survive --quiet, so scripts "
               "can gate on status instead of grepping); 2 usage error",
    )
    p_diff.add_argument("base", help="baseline RunReport JSON")
    p_diff.add_argument("new", help="candidate RunReport JSON")
    p_diff.add_argument("--watch", metavar="PATH",
                        help="JSON list of watch rules (default: built-in set)")
    p_diff.add_argument("-v", "--verbose", action="store_true",
                        help="print non-breached findings too")
    p_diff.add_argument("-q", "--quiet", action="store_true",
                        help="suppress per-finding lines; keep the one-line "
                             "summary and the exit code")
    p_diff.set_defaults(func=_cmd_diff)

    p_trace = sub.add_parser(
        "trace", help="reconstruct one packet's cross-layer story",
        description="Run an instrumented scenario and print one marked "
                    "packet's full story: data-plane hops, compare votes, "
                    "control-plane voting (with --ctrl) and overlapping "
                    "fault windows.",
        epilog="exit codes: 0 story printed (or id listing); 1 no "
               "trajectory for the requested id; 2 usage error",
    )
    p_trace.add_argument("trace_id", nargs="?", type=int, default=None,
                         help="trace id to reconstruct (omit to list ids)")
    p_trace.add_argument("--scenario", default="central3",
                         help="testbed variant (default central3)")
    p_trace.add_argument("--ctrl", action="store_true",
                         help="run under a replicated control plane so the "
                              "story includes ctrl.vote/ctrl.release spans")
    p_trace.add_argument("--ctrl-k", type=int, default=3,
                         help="controller replicas for --ctrl (default 3)")
    p_trace.add_argument("--adversary", default="none",
                         choices=("none", "crash", "lying"),
                         help="chaos adversary for --ctrl (default none)")
    p_trace.add_argument("--chaos", default=None, metavar="NAME",
                         help="reserved: named fault schedule (with --ctrl, "
                              "the adversary axis already arms one)")
    p_trace.add_argument("--seed", type=int, default=1)
    p_trace.add_argument("--sample", type=float, default=1.0)
    p_trace.add_argument("--duration", type=float, default=None,
                         metavar="SECONDS")
    p_trace.add_argument("--list", action="store_true",
                         help="list available trace ids and exit")
    p_trace.set_defaults(func=_cmd_trace)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(obs_main())
