"""Durable fleet telemetry: an append-only JSONL event log.

The farm's live telemetry (:class:`~repro.farm.progress.FarmProgress`)
is TraceBus-shaped and in-memory: once the process exits, the only
surviving artefact is the rendered summary line.  This module makes the
stream *durable and replayable*: an :class:`EventLogWriter` appends one
JSON object per line, each carrying a **monotonic, gapless sequence
number**, and a :class:`FarmEventLogger` bridges a farm's progress bus
onto a writer, so every queued/cached/started/done/retried/failed
transition — plus a bounded per-run digest of what happened *inside*
each simulation (alarms raised, quarantine transitions, control-plane
vote divergences) — lands on disk as it happens.

Design constraints:

* **pull/append-only** — the log observes; it never feeds back.  Result
  dicts, RunReports and spec hashes are bit-identical with the log on
  or off (the fleet-smoke CI job diffs exactly this).
* **typed** — every event kind declares its required data fields in
  :data:`EVENT_SCHEMA`; the writer refuses malformed events, so a log
  that exists always validates.
* **replayable** — :func:`replay_rollup` reconstructs the final
  :class:`FarmProgress` rollup from the individual task events alone,
  and :func:`check_replay` proves it equals the ``farm.summary`` event
  the run recorded (gapless sequence numbers make truncation loud).

Wall-clock timestamps (``ts``) are seconds since the writer opened; they
order the log but carry no simulation meaning — simulated-time telemetry
stays on the per-run TraceBus.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple

__all__ = [
    "EVENT_SCHEMA",
    "EventLogError",
    "FleetEvent",
    "EventLogWriter",
    "FarmEventLogger",
    "run_digest",
    "read_events",
    "validate_events",
    "replay_rollup",
    "check_replay",
    "ROLLUP_FIELDS",
]

#: log format version, stamped into the ``log.open`` event
LOG_VERSION = 1

#: event kind -> required data fields.  Extra fields are allowed (the
#: digest event carries whatever bounded facts the run produced); a
#: *missing* required field is a schema violation.
EVENT_SCHEMA: Dict[str, Tuple[str, ...]] = {
    "log.open": ("version", "name"),
    "log.close": ("events",),
    "farm.task.queued": ("runner", "key"),
    "farm.cache.miss": ("runner", "key"),
    "farm.task.cached": ("runner", "key"),
    "farm.task.started": ("runner", "key", "attempt"),
    "farm.task.done": ("runner", "key", "wall_time"),
    "farm.task.retried": ("runner", "key", "reason"),
    "farm.task.failed": ("runner", "key", "reason"),
    "farm.task.digest": ("runner", "key"),
    "farm.summary": (
        "jobs", "queued", "running", "done", "failed", "retried",
        "cache_hits", "executed", "task_wall_s", "elapsed_s",
    ),
}

#: the counters a replayed rollup must reproduce exactly (elapsed_s is
#: wall clock at snapshot time and cannot be replayed from task events)
ROLLUP_FIELDS = (
    "queued", "running", "done", "failed", "retried",
    "cache_hits", "executed", "task_wall_s",
)


class EventLogError(ValueError):
    """A malformed event, a sequence gap, or a schema violation."""


@dataclass(frozen=True)
class FleetEvent:
    """One line of the event log."""

    seq: int
    ts: float
    kind: str
    source: str
    data: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seq": self.seq,
            "ts": self.ts,
            "kind": self.kind,
            "source": self.source,
            "data": self.data,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FleetEvent":
        try:
            return cls(
                seq=int(payload["seq"]),
                ts=float(payload["ts"]),
                kind=str(payload["kind"]),
                source=str(payload["source"]),
                data=dict(payload.get("data", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise EventLogError(f"malformed event line: {exc}") from exc


def _jsonable(value: Any) -> Any:
    """Best-effort JSON projection of one event data value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    summary = getattr(value, "summary", None)
    if callable(summary):
        return summary()
    return repr(value)


class EventLogWriter:
    """Append-only JSONL sink with gapless sequence numbering.

    The writer owns the sequence counter: the first event (``log.open``,
    emitted by the constructor) is ``seq=0`` and every ``append`` takes
    the next integer.  Lines are flushed as written, so a tail (or a
    crashed run's post-mortem) always sees a prefix of complete lines.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        name: str = "",
        meta: Optional[Dict[str, Any]] = None,
        fh: Optional[IO[str]] = None,
    ) -> None:
        if (path is None) == (fh is None):
            raise ValueError("pass exactly one of path / fh")
        self.path = path
        self._fh = fh if fh is not None else open(path, "w", encoding="utf-8")
        self._owns_fh = fh is None
        self._next_seq = 0
        self._t0 = time.time()
        self.closed = False
        self.append(
            "log.open", "fleet",
            version=LOG_VERSION, name=name, meta=meta or {},
        )

    @property
    def events_written(self) -> int:
        return self._next_seq

    def append(self, kind: str, source: str, **data: Any) -> int:
        """Validate, serialise and flush one event; returns its seq."""
        if self.closed:
            raise EventLogError("event log is closed")
        required = EVENT_SCHEMA.get(kind)
        if required is None:
            raise EventLogError(f"unknown event kind {kind!r}")
        missing = [f for f in required if f not in data]
        if missing:
            raise EventLogError(f"{kind}: missing required fields {missing}")
        seq = self._next_seq
        self._next_seq += 1
        event = FleetEvent(
            seq=seq,
            ts=round(time.time() - self._t0, 6),
            kind=kind,
            source=source,
            data={k: _jsonable(v) for k, v in data.items()},
        )
        self._fh.write(json.dumps(event.to_dict(), sort_keys=True))
        self._fh.write("\n")
        self._fh.flush()
        return seq

    def close(self) -> None:
        """Append the closing event and release the file handle."""
        if self.closed:
            return
        self.append("log.close", "fleet", events=self._next_seq + 1)
        self.closed = True
        if self._owns_fh:
            self._fh.close()


# ----------------------------------------------------------------------
# bounded per-run digests
# ----------------------------------------------------------------------
#: cap on list/dict entries carried by one digest (the log is bounded
#: per task no matter how eventful the run was)
DIGEST_BOUND = 8

#: result-dict list fields lifted (bounded) into the digest
_DIGEST_LISTS = ("quarantined", "readmitted", "ctrl_quarantined", "ctrl_readmitted")


def run_digest(value: Any) -> Optional[Dict[str, Any]]:
    """A bounded telemetry digest of one task's result value.

    Farm tasks return JSON values; the richer ones (``chaos.run``,
    ``ctrl.run``) carry alarms, quarantine transitions, control-plane
    vote accounting and fault timelines.  This lifts the operationally
    interesting facts — bounded to :data:`DIGEST_BOUND` entries each —
    into one flat dict for the event log and the live alarm feed.
    Returns ``None`` for results with nothing to report (plain figure
    samples), so most tasks cost no digest event at all.
    """
    if not isinstance(value, dict):
        return None
    digest: Dict[str, Any] = {}
    alarms = value.get("alarms")
    if isinstance(alarms, dict) and alarms:
        digest["alarms"] = {k: alarms[k] for k in sorted(alarms)[:DIGEST_BOUND]}
    for field_name in _DIGEST_LISTS:
        entries = value.get(field_name)
        if isinstance(entries, list) and entries:
            digest[field_name] = entries[:DIGEST_BOUND]
    injections = value.get("injections")
    if isinstance(injections, list) and injections:
        digest["faults"] = [
            {"time": i.get("time"), "kind": i.get("kind"), "target": i.get("target")}
            for i in injections[:DIGEST_BOUND]
        ]
    detection = value.get("detection_latency")
    if isinstance(detection, (int, float)):
        digest["detection_latency"] = detection
    ctrl = value.get("ctrl")
    if isinstance(ctrl, dict):
        for key in ("blocked", "malicious_released"):
            if ctrl.get(key):
                digest[f"ctrl_{key}"] = ctrl[key]
    malicious = value.get("malicious_installed")
    if malicious:
        digest["malicious_installed"] = malicious
    fallbacks = value.get("batch_fallbacks")
    if isinstance(fallbacks, dict) and fallbacks:
        digest["batch_fallbacks"] = {
            k: fallbacks[k] for k in sorted(fallbacks)[:DIGEST_BOUND]
        }
    return digest or None


# ----------------------------------------------------------------------
# the farm bridge
# ----------------------------------------------------------------------
class FarmEventLogger:
    """Streams one farm's progress bus onto an event-log writer.

    Subscribes to the ``farm.*`` topic prefix of the progress object's
    TraceBus, so it sees **every** record in emit order — including
    records past the bus's retention saturation point (listeners are
    exempt from truncation; see the TraceBus saturation contract).  The
    record topic doubles as the event kind; unknown farm topics are
    forwarded as their nearest schema kind or dropped with a count, so a
    newer farm cannot corrupt an older log.
    """

    def __init__(self, writer: EventLogWriter, progress) -> None:
        self.writer = writer
        self.progress = progress
        self.forwarded = 0
        self.skipped = 0
        progress.bus.subscribe("farm.*", self._on_record)

    def detach(self) -> None:
        self.progress.bus.unsubscribe("farm.*", self._on_record)

    def _on_record(self, record) -> None:
        if record.topic not in EVENT_SCHEMA:
            self.skipped += 1
            return
        self.writer.append(record.topic, record.source, **record.data)
        self.forwarded += 1


# ----------------------------------------------------------------------
# reading, validation, replay
# ----------------------------------------------------------------------
def read_events(path: str) -> List[FleetEvent]:
    """Parse one JSONL event log; raises :class:`EventLogError` on a
    line that is not valid JSON or not event-shaped."""
    events: List[FleetEvent] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise EventLogError(f"{path}:{lineno}: not JSON: {exc}") from exc
            events.append(FleetEvent.from_dict(payload))
    return events


def validate_events(events: Iterable[FleetEvent]) -> List[str]:
    """Schema + sequencing errors for one event stream (empty = valid).

    Checks: sequence numbers start at 0 and are gapless; every kind is
    known; every event carries its kind's required fields; the log opens
    with ``log.open``; a ``log.close`` (when present) is final and its
    ``events`` count matches.
    """
    errors: List[str] = []
    events = list(events)
    for position, event in enumerate(events):
        if event.seq != position:
            errors.append(
                f"seq gap: event #{position} carries seq {event.seq}"
            )
        required = EVENT_SCHEMA.get(event.kind)
        if required is None:
            errors.append(f"seq {event.seq}: unknown kind {event.kind!r}")
            continue
        missing = [f for f in required if f not in event.data]
        if missing:
            errors.append(f"seq {event.seq}: {event.kind} missing {missing}")
    if events and events[0].kind != "log.open":
        errors.append(f"log does not open with log.open (got {events[0].kind!r})")
    for position, event in enumerate(events):
        if event.kind == "log.close":
            if position != len(events) - 1:
                errors.append(f"log.close at seq {event.seq} is not final")
            elif event.data.get("events") != len(events):
                errors.append(
                    f"log.close claims {event.data.get('events')} events, "
                    f"log holds {len(events)}"
                )
    return errors


def replay_rollup(events: Iterable[FleetEvent]) -> Dict[str, Any]:
    """Reconstruct the final farm rollup from individual task events.

    Mirrors :meth:`repro.farm.progress.FarmProgress.snapshot` counter
    for counter (minus ``elapsed_s``): if the log is complete, the
    result equals the run's own ``farm.summary`` event on every
    :data:`ROLLUP_FIELDS` entry — which :func:`check_replay` asserts.
    """
    queued = running = done = failed = retried = cache_hits = 0
    wall_times: List[float] = []
    for event in events:
        kind = event.kind
        if kind == "farm.task.queued":
            queued += 1
        elif kind == "farm.task.cached":
            cache_hits += 1
            done += 1
        elif kind == "farm.task.started":
            running += 1
        elif kind == "farm.task.done":
            running -= 1
            done += 1
            wall_times.append(float(event.data["wall_time"]))
        elif kind == "farm.task.retried":
            running -= 1
            retried += 1
        elif kind == "farm.task.failed":
            running -= 1
            failed += 1
    return {
        "queued": queued,
        "running": running,
        "done": done,
        "failed": failed,
        "retried": retried,
        "cache_hits": cache_hits,
        "executed": done - cache_hits,
        "task_wall_s": round(sum(wall_times), 4),
    }


def check_replay(events: Iterable[FleetEvent]) -> Tuple[Dict[str, Any], List[str]]:
    """Replay the log and diff the result against its ``farm.summary``.

    Returns ``(replayed_rollup, errors)``.  A log whose farm run never
    finished (no summary event) is an error — the stream is truncated.
    When a log spans several farm batteries (``python -m repro all``),
    the *final* summary is compared against the replay of the events
    after the previous summary, so every battery must reconcile.
    """
    events = list(events)
    errors = validate_events(events)
    summaries = [
        (i, e) for i, e in enumerate(events) if e.kind == "farm.summary"
    ]
    if not summaries:
        errors.append("no farm.summary event: log is truncated mid-run")
        return replay_rollup(events), errors
    start = 0
    replayed: Dict[str, Any] = {}
    for index, summary in summaries:
        replayed = replay_rollup(events[start:index])
        for fname in ROLLUP_FIELDS:
            expected = summary.data.get(fname)
            got = replayed.get(fname)
            if got != expected:
                errors.append(
                    f"replay mismatch at seq {summary.seq}: "
                    f"{fname} replayed={got} recorded={expected}"
                )
        start = index + 1
    return replayed, errors
