"""Run reports: deterministic JSON snapshots of one experiment run.

A :class:`RunReport` bundles everything the CI regression gate and a
human reader need from a run: the flattened metrics snapshot, the
experiment records, packet-lifecycle span statistics, and farm progress.
Every value in a report derives from simulated time and seeded RNG
streams, so the same experiment at the same seed produces an identical
report — which is what lets ``repro obs diff`` compare a fresh run
against a checked-in baseline and fail loudly when a watched counter
drifts.

The module also hosts the pull side of the metrics model:
:func:`collect_network` walks a finished network once and turns the
plain per-component counters (link stats, switch stats, flow-table
lookup counters, hub/host counters, simulator bookkeeping) into
registry samples.  Push instruments (latency histograms) already live
in the registry; pull keeps the per-packet hot paths free of metric
calls for everything countable after the fact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.metrics import MetricsRegistry

__all__ = [
    "RunReport",
    "WatchRule",
    "DEFAULT_WATCHES",
    "DiffFinding",
    "collect_network",
    "diff_reports",
    "dump_records_jsonl",
    "sanitise_value",
]

REPORT_VERSION = 1


# ----------------------------------------------------------------------
# pull collection
# ----------------------------------------------------------------------
def collect_network(
    network,
    registry: MetricsRegistry,
    compares: Iterable = (),
) -> None:
    """Pull end-of-run counters from ``network`` into ``registry``.

    Everything is duck-typed: any node exposing a recognised shape
    (``stats.as_dict`` + ``table.lookup_stats`` for switches,
    ``duplicated``/``merged`` for hubs, ``rx_dropped`` for hosts)
    contributes samples.  Call once per run on a registry dedicated to
    the snapshot — the counters are absolute values, not increments.
    """
    sim = network.sim
    registry.counter(
        "sim_events_processed_total", "events executed by the simulator"
    ).inc(sim.events_processed)
    registry.gauge(
        "sim_pending_events_peak", "high-water mark of the event queue"
    ).set(sim.peak_pending_events)
    registry.gauge("sim_time_seconds", "simulated clock at snapshot").set(sim.now)

    realm = getattr(sim, "realm", None)
    if realm is not None:
        # the push instruments (batches_total, batch_fallback_total,
        # batch_size_packets) bind at realm construction; pull only the
        # remaining snapshot counters so nothing double-counts
        registry.gauge(
            "batch_train", "configured packets per train"
        ).set(realm.train)
        registry.counter(
            "batch_packets_total", "packets carried inside trains"
        ).inc(realm.packets_batched)
        registry.counter(
            "batch_splits_total", "packets split out of trains"
        ).inc(realm.splits_total)
        registry.counter(
            "batch_merges_total", "trains assembled for injection"
        ).inc(realm.merges_total)

    trace = getattr(network, "trace", None)
    if trace is not None:
        registry.counter(
            "trace_records_retained_total", "records retained by the trace bus"
        ).inc(len(trace.records))
        registry.counter(
            "trace_records_dropped_total", "records lost to retention saturation"
        ).inc(trace.dropped_count)

    c_tx = registry.counter(
        "link_tx_packets_total", "frames handed to a link transmitter",
        labelnames=("link",),
    )
    c_txb = registry.counter(
        "link_tx_bytes_total", "wire bytes handed to a link transmitter",
        labelnames=("link",),
    )
    c_delivered = registry.counter(
        "link_delivered_packets_total", "frames delivered to the far port",
        labelnames=("link",),
    )
    c_qdrop = registry.counter(
        "link_queue_drops_total", "frames dropped by the drop-tail queue",
        labelnames=("link",),
    )
    c_ldrop = registry.counter(
        "link_loss_drops_total", "frames dropped by random loss",
        labelnames=("link",),
    )
    for link in getattr(network, "links", ()):
        for name, stats, _depth in link.directions():
            c_tx.labels(name).inc(stats.tx_packets)
            c_txb.labels(name).inc(stats.tx_bytes)
            c_delivered.labels(name).inc(stats.delivered_packets)
            c_qdrop.labels(name).inc(stats.queue_drops)
            c_ldrop.labels(name).inc(stats.loss_drops)

    for node in network.nodes.values():
        name = node.name
        stats = getattr(node, "stats", None)
        table = getattr(node, "table", None)
        if stats is not None and hasattr(stats, "as_dict") and table is not None:
            for key, value in stats.as_dict().items():
                registry.counter(
                    f"switch_{key}_total", "switch datapath counter",
                    labelnames=("switch",),
                ).labels(name).inc(value)
            lookup = table.lookup_stats()
            occupancy = lookup.pop("entries")
            for key, value in lookup.items():
                registry.counter(
                    f"flowtable_{key}_total", "flow-table lookup-path counter",
                    labelnames=("switch",),
                ).labels(name).inc(value)
            registry.gauge(
                "flowtable_entries", "installed flow entries",
                labelnames=("switch",),
            ).labels(name).set(occupancy)
        if hasattr(node, "duplicated") and hasattr(node, "merged"):
            registry.counter(
                "hub_duplicated_total", "copies fanned out by a hub",
                labelnames=("hub",),
            ).labels(name).inc(node.duplicated)
            registry.counter(
                "hub_merged_total", "frames merged upstream by a hub",
                labelnames=("hub",),
            ).labels(name).inc(node.merged)
        if hasattr(node, "rx_dropped"):
            registry.counter(
                "host_rx_dropped_total", "frames dropped by a full receive queue",
                labelnames=("host",),
            ).labels(name).inc(node.rx_dropped)
            registry.counter(
                "host_rx_foreign_total", "frames addressed to someone else",
                labelnames=("host",),
            ).labels(name).inc(node.rx_foreign)

    for core in compares:
        if core is None:
            continue
        cname = core.name
        for key, value in core.stats.as_dict().items():
            registry.counter(
                f"compare_{key}_total", "compare element counter",
                labelnames=("compare",),
            ).labels(cname).inc(value)
        registry.gauge(
            "compare_buffered_entries", "vote-book entries still buffered",
            labelnames=("compare",),
        ).labels(cname).set(len(core.book))


# ----------------------------------------------------------------------
# the report itself
# ----------------------------------------------------------------------
@dataclass
class RunReport:
    """One run's worth of observability output, JSON-serialisable."""

    name: str
    meta: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    records: List[Dict[str, Any]] = field(default_factory=list)
    spans: Dict[str, Any] = field(default_factory=dict)
    farm: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "version": REPORT_VERSION,
            "name": self.name,
            "meta": self.meta,
            "metrics": self.metrics,
            "records": self.records,
            "spans": self.spans,
            "farm": self.farm,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunReport":
        version = data.get("version", REPORT_VERSION)
        if version > REPORT_VERSION:
            raise ValueError(f"run report version {version} is newer than {REPORT_VERSION}")
        return cls(
            name=data.get("name", ""),
            meta=dict(data.get("meta", {})),
            metrics=dict(data.get("metrics", {})),
            records=list(data.get("records", [])),
            spans=dict(data.get("spans", {})),
            farm=data.get("farm"),
        )

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path) -> "RunReport":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def counter_value(self, key: str) -> float:
        """Scalar value of one sample key (histograms yield their count)."""
        value = self.metrics.get(key, 0.0)
        if isinstance(value, dict):
            return float(value.get("count", 0))
        return float(value)


# ----------------------------------------------------------------------
# diffing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WatchRule:
    """A regression watch over metric sample keys.

    ``pattern`` is an ``fnmatch`` glob over the full flattened sample key
    (name plus labels).  A matched value regresses when it exceeds both
    ``base * max_ratio`` and ``base + max_increase`` — the absolute slack
    keeps tiny baselines (0 or 1 drops) from tripping on noise, the ratio
    keeps large baselines honest.
    """

    pattern: str
    max_ratio: float = 1.25
    max_increase: float = 0.0
    note: str = ""

    def breached(self, base: float, new: float) -> bool:
        return new > base * self.max_ratio and new > base + self.max_increase


#: watches applied by ``repro obs diff`` when none are supplied: the
#: counters whose growth historically signals a real regression.
DEFAULT_WATCHES = (
    WatchRule("flowtable_scan_steps_total*", max_ratio=1.25, max_increase=64.0,
              note="wildcard scan work per lookup crept up (index regression?)"),
    WatchRule("flowtable_lookups_total*", max_ratio=1.5, max_increase=256.0,
              note="more lookups for the same workload"),
    WatchRule("link_queue_drops_total*", max_ratio=1.2, max_increase=16.0,
              note="drop-tail losses grew"),
    WatchRule("switch_dropped_service_queue_total*", max_ratio=1.2, max_increase=16.0,
              note="switch service queue overflowed more often"),
    WatchRule("compare_queue_drops_total*", max_ratio=1.2, max_increase=16.0,
              note="compare processor queue overflowed more often"),
    WatchRule("compare_expired_unreleased_total*", max_ratio=1.25, max_increase=16.0,
              note="more packets timed out without reaching quorum"),
    WatchRule("host_rx_dropped_total*", max_ratio=1.2, max_increase=16.0,
              note="host receive queues overflowed more often"),
    WatchRule("sim_events_processed_total*", max_ratio=1.3, max_increase=4096.0,
              note="event count blew up for the same workload"),
)


@dataclass
class DiffFinding:
    """One watched sample key's base-vs-new comparison."""

    key: str
    base: float
    new: float
    rule: WatchRule
    breached: bool

    def describe(self) -> str:
        status = "FAIL" if self.breached else "ok"
        line = f"[{status}] {self.key}: {self.base:g} -> {self.new:g}"
        if self.breached and self.rule.note:
            line += f"  ({self.rule.note})"
        return line


def diff_reports(
    base: RunReport,
    new: RunReport,
    watches: Iterable[WatchRule] = DEFAULT_WATCHES,
) -> List[DiffFinding]:
    """Compare two reports under the given watches.

    Every sample key present in either report is tested against the
    first watch whose pattern matches it; keys nothing watches are
    ignored.  Findings are returned for all watched keys (breached or
    not) so callers can render the full comparison.
    """
    watches = list(watches)
    findings: List[DiffFinding] = []
    keys = sorted(set(base.metrics) | set(new.metrics))
    for key in keys:
        for rule in watches:
            if fnmatchcase(key, rule.pattern):
                base_v = base.counter_value(key)
                new_v = new.counter_value(key)
                findings.append(
                    DiffFinding(
                        key=key,
                        base=base_v,
                        new=new_v,
                        rule=rule,
                        breached=rule.breached(base_v, new_v),
                    )
                )
                break
    return findings


# ----------------------------------------------------------------------
# JSONL trace dumps
# ----------------------------------------------------------------------
def sanitise_value(value: Any) -> Any:
    """Make one trace-record data value JSON-safe.

    Packets collapse to their one-line ``summary()``; anything else
    non-JSON falls back to ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    summary = getattr(value, "summary", None)
    if callable(summary):
        return summary()
    if isinstance(value, (list, tuple)):
        return [sanitise_value(v) for v in value]
    if isinstance(value, dict):
        return {str(k): sanitise_value(v) for k, v in value.items()}
    return repr(value)


def dump_records_jsonl(records: Iterable, fh) -> int:
    """Write trace records as JSON lines; returns the line count."""
    count = 0
    for record in records:
        fh.write(
            json.dumps(
                {
                    "time": record.time,
                    "topic": record.topic,
                    "source": record.source,
                    "data": {k: sanitise_value(v) for k, v in record.data.items()},
                },
                sort_keys=True,
            )
        )
        fh.write("\n")
        count += 1
    return count
