"""Unified observability: metrics, packet-lifecycle spans, run reports.

Import discipline: hot-path modules (``repro.net.link``,
``repro.core.compare``) import :mod:`repro.obs.metrics` at module load,
so this package must stay import-light — only the dependency-free
pillars are re-exported here.  The heavier layers
(:mod:`repro.obs.report`, :mod:`repro.obs.summary`,
:mod:`repro.obs.cli`) import scenario/traffic code and are imported
lazily by their callers.
"""

from repro.obs.metrics import (
    MetricsRegistry,
    active_registry,
    set_active_registry,
    use_registry,
)
from repro.obs.spans import PacketTracer

__all__ = [
    "MetricsRegistry",
    "PacketTracer",
    "active_registry",
    "set_active_registry",
    "use_registry",
]
