"""Stdlib-only live dashboard: Prometheus text + ``/fleet`` JSON.

A :class:`DashboardServer` wraps :class:`http.server.ThreadingHTTPServer`
on a daemon thread serving:

* ``GET /metrics`` — the Prometheus text exposition of the attached
  :class:`~repro.obs.metrics.MetricsRegistry` (the farm counter trio,
  plus whatever else bound instruments from it);
* ``GET /fleet``   — the JSON snapshot from the attached
  :class:`~repro.obs.fleet.FleetState` (progress, per-runner throughput,
  cache hit rate, in-flight specs, EWMA ETA, recent alarm feed);
* ``GET /events?after=N`` — a bounded tail of raw farm bus records with
  sequence numbers greater than ``N`` (the ``watch`` CLI polls this);
* ``GET /``        — a tiny index naming the endpoints.

``port=0`` binds an ephemeral port (CI uses this); :meth:`start` returns
the bound port.  ``fleet`` and ``registry`` are plain mutable attributes
so a CLI running several farm batteries can re-point the server at each
new battery without rebinding the socket.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs, urlparse

__all__ = ["DashboardServer"]

_INDEX = (
    "repro fleet dashboard\n"
    "  /metrics        Prometheus text exposition\n"
    "  /fleet          JSON fleet snapshot\n"
    "  /events?after=N bounded tail of farm events\n"
)


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-fleet/1"

    # the dashboard is telemetry, not a service: never log to stderr
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass

    def _send(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            self._route()
        except BrokenPipeError:  # pragma: no cover - client went away
            pass

    def _route(self) -> None:
        url = urlparse(self.path)
        dashboard: "DashboardServer" = self.server.dashboard  # type: ignore[attr-defined]
        if url.path == "/":
            self._send(200, _INDEX, "text/plain; charset=utf-8")
        elif url.path == "/metrics":
            registry = dashboard.registry
            body = registry.render_prometheus() if registry is not None else ""
            self._send(200, body, "text/plain; version=0.0.4; charset=utf-8")
        elif url.path == "/fleet":
            fleet = dashboard.fleet
            if fleet is None:
                self._send(503, '{"error": "no fleet attached"}\n', "application/json")
                return
            body = json.dumps(fleet.snapshot(), sort_keys=True, indent=1)
            self._send(200, body + "\n", "application/json")
        elif url.path == "/events":
            fleet = dashboard.fleet
            if fleet is None:
                self._send(503, '{"error": "no fleet attached"}\n', "application/json")
                return
            query = parse_qs(url.query)
            try:
                after = int(query.get("after", ["0"])[0])
            except ValueError:
                after = 0
            body = json.dumps(fleet.recent_events(after=after), sort_keys=True)
            self._send(200, body + "\n", "application/json")
        else:
            self._send(404, "not found\n", "text/plain; charset=utf-8")


class DashboardServer:
    """Daemon-threaded HTTP server over a fleet state and a registry."""

    def __init__(
        self,
        fleet=None,
        registry=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.fleet = fleet
        self.registry = registry
        self.host = host
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> Optional[int]:
        return self._httpd.server_address[1] if self._httpd is not None else None

    @property
    def url(self) -> Optional[str]:
        return f"http://{self.host}:{self.port}" if self._httpd is not None else None

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        if self._httpd is not None:
            return self.port  # type: ignore[return-value]
        self._httpd = ThreadingHTTPServer((self.host, self._requested_port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.dashboard = self  # type: ignore[attr-defined]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-fleet-dashboard",
            daemon=True,
        )
        self._thread.start()
        return self.port  # type: ignore[return-value]

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "DashboardServer":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()
