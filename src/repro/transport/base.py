"""Transport interface: sessions moving wire images plus metadata.

The model follows pycyphal's transport layer: a :class:`Transport` is a
factory and registry of :class:`Session` objects, a session is one
directed stream of messages for one *role* at one *scope*, and tracer
hooks observe every message crossing any session of a transport.

Roles (``SessionSpec.role``):

``fanout``
    trusted endpoint → one untrusted branch (the hub direction);
``collect``
    collecting endpoint → compare; messages carry ``branch`` (which
    untrusted router produced the copy) and ``claim`` (the egress port
    the copy's arrival link stands for, shielded-router wiring);
``release``
    compare → endpoint; messages carry ``claim`` only;
``egress``
    plain forwarding between neighbours (switch/hub output).

The send contract is *ownership transfer*: ``send(packet, ...)`` takes
the packet object and the caller must not mutate it afterwards.  The DES
backend moves the object itself (so records stay bit-identical with the
pre-transport code, which handed freshly copied packets to ports); the
UDP backend serialises it.  Receive callbacks get ``(packet, meta)``
where ``meta`` is a dict with whatever of ``branch``/``claim``/``seq``
the wire carried.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

ROLE_FANOUT = "fanout"
ROLE_COLLECT = "collect"
ROLE_RELEASE = "release"
ROLE_EGRESS = "egress"

_ROLES = (ROLE_FANOUT, ROLE_COLLECT, ROLE_RELEASE, ROLE_EGRESS)

#: receiver callback: fn(packet, meta)
Receiver = Callable[[object, dict], None]
#: tracer callback: fn(TransportTrace)
Tracer = Callable[["TransportTrace"], None]


class TransportError(Exception):
    """Misconfigured or misused transport."""


@dataclass(frozen=True)
class SessionSpec:
    """Identity of one session: vote scope, direction role, branch."""

    scope: str
    role: str
    branch: Optional[int] = None

    def validate(self) -> None:
        if self.role not in _ROLES:
            raise TransportError(
                f"unknown session role {self.role!r} (known: {_ROLES})"
            )
        if not self.scope:
            raise TransportError("session scope must be non-empty")


@dataclass(frozen=True)
class TransportTrace:
    """One message observed by a transport tracer hook."""

    direction: str  # "tx" | "rx"
    transport: str
    spec: SessionSpec
    packet: object
    branch: Optional[int] = None
    claim: Optional[int] = None
    seq: Optional[int] = None


class SessionStats:
    """Per-session message counters."""

    __slots__ = ("tx_messages", "rx_messages", "drops")

    def __init__(self) -> None:
        self.tx_messages = 0
        self.rx_messages = 0
        self.drops = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class Session:
    """One directed message stream (see module docstring for roles)."""

    def __init__(self, transport: "Transport", spec: SessionSpec) -> None:
        spec.validate()
        self.transport = transport
        self.spec = spec
        self.stats = SessionStats()
        self._receiver: Optional[Receiver] = None

    # -- sending --------------------------------------------------------
    def send(
        self,
        packet: object,
        branch: Optional[int] = None,
        claim: Optional[int] = None,
    ) -> None:
        raise NotImplementedError

    # -- receiving ------------------------------------------------------
    def set_receiver(self, fn: Optional[Receiver]) -> None:
        self._receiver = fn

    def deliver(self, packet: object, meta: dict) -> None:
        """Called by the owning transport when a message arrives."""
        self.stats.rx_messages += 1
        if self.transport._tracers:
            self.transport._trace("rx", self.spec, packet, meta)
        if self._receiver is not None:
            self._receiver(packet, meta)

    def close(self) -> None:
        self._receiver = None
        self.transport._forget(self.spec)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.spec})"


class Transport:
    """Factory and registry of sessions over one byte-moving medium."""

    def __init__(self, name: str = "transport") -> None:
        self.name = name
        self.sessions: Dict[SessionSpec, Session] = {}
        self._tracers: List[Tracer] = []

    # -- session management --------------------------------------------
    def session(self, spec: SessionSpec, **options: object) -> Session:
        """Return the session for ``spec``, creating it on first use."""
        existing = self.sessions.get(spec)
        if existing is not None:
            return existing
        session = self._make_session(spec, **options)
        self.sessions[spec] = session
        return session

    def _make_session(self, spec: SessionSpec, **options: object) -> Session:
        raise NotImplementedError

    def adopt(self, session: "Session") -> "Session":
        """Register an externally built session (custom media, e.g. the
        OpenFlow control channel) so tracers and stats cover it too."""
        self.sessions[session.spec] = session
        return session

    def _forget(self, spec: SessionSpec) -> None:
        self.sessions.pop(spec, None)

    def close(self) -> None:
        for session in list(self.sessions.values()):
            session.close()
        self.sessions.clear()

    # -- tracer hooks ---------------------------------------------------
    def add_tracer(self, fn: Tracer) -> None:
        """Observe every message crossing any session of this transport."""
        self._tracers.append(fn)

    def remove_tracer(self, fn: Tracer) -> None:
        if fn in self._tracers:
            self._tracers.remove(fn)

    def _trace(
        self, direction: str, spec: SessionSpec, packet: object, meta: dict
    ) -> None:
        record = TransportTrace(
            direction=direction,
            transport=self.name,
            spec=spec,
            packet=packet,
            branch=meta.get("branch"),
            claim=meta.get("claim"),
            seq=meta.get("seq"),
        )
        for fn in self._tracers:
            fn(record)

    # -- stats ----------------------------------------------------------
    def stats(self) -> dict:
        """Roll-up of per-session counters, keyed by spec string."""
        return {
            f"{spec.role}:{spec.scope}"
            + (f":{spec.branch}" if spec.branch is not None else ""):
                session.stats.as_dict()
            for spec, session in sorted(
                self.sessions.items(),
                key=lambda kv: (kv[0].role, kv[0].scope, kv[0].branch or -1),
            )
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r}, sessions={len(self.sessions)})"


# ----------------------------------------------------------------------
# loopback (tests and redundant-fusion unit checks)
# ----------------------------------------------------------------------
class _LoopbackSession(Session):
    def send(
        self,
        packet: object,
        branch: Optional[int] = None,
        claim: Optional[int] = None,
    ) -> None:
        self.stats.tx_messages += 1
        transport: "LoopbackTransport" = self.transport  # type: ignore[assignment]
        seq = transport._next_seq()
        if branch is None:
            branch = self.spec.branch
        meta = {"branch": branch, "claim": claim, "seq": seq}
        if transport._tracers:
            transport._trace("tx", self.spec, packet, meta)
        peer = transport.peer
        if peer is None:
            self.stats.drops += 1
            return
        remote = peer.sessions.get(self.spec)
        if remote is None:
            self.stats.drops += 1
            return
        remote.deliver(packet, meta)


class LoopbackTransport(Transport):
    """Two linked in-process transports: A's session delivers to B's
    session of the same spec, synchronously.  For tests."""

    def __init__(self, name: str = "loopback") -> None:
        super().__init__(name)
        self.peer: Optional["LoopbackTransport"] = None
        self._seq = 0

    @classmethod
    def pair(cls, name: str = "loopback") -> Tuple["LoopbackTransport", "LoopbackTransport"]:
        a, b = cls(f"{name}.a"), cls(f"{name}.b")
        a.peer, b.peer = b, a
        return a, b

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def _make_session(self, spec: SessionSpec, **options: object) -> Session:
        return _LoopbackSession(self, spec)
