"""Wall-clock scheduler with the DES ``Simulator`` surface.

:class:`CompareCore`, :class:`~repro.sim.PeriodicTask` and the
quarantine machinery only touch ``sim.now``, ``sim.schedule``,
``sim.schedule_at`` and ``sim.realm``; this adapter maps those onto an
asyncio event loop so the *same* voting code runs unmodified in a
real-time process.  ``now`` is seconds since the scheduler was created
(``loop.time()`` is monotonic), which keeps compare timestamps small and
comparable with DES run timelines.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Optional


class _Handle:
    """Duck-types :class:`repro.sim.engine.EventHandle`."""

    __slots__ = ("_timer", "_cancelled")

    def __init__(self, timer: asyncio.TimerHandle) -> None:
        self._timer = timer
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True
        self._timer.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class RealTimeScheduler:
    """``Simulator``-shaped facade over an asyncio loop."""

    #: no micro-event batching realm in real time
    realm = None

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None) -> None:
        self._loop = loop or asyncio.get_event_loop()
        self._t0 = self._loop.time()

    @property
    def now(self) -> float:
        return self._loop.time() - self._t0

    def schedule(self, delay: float, callback: Callable[[], None]) -> _Handle:
        return _Handle(self._loop.call_later(max(0.0, delay), callback))

    def schedule_at(self, when: float, callback: Callable[[], None]) -> _Handle:
        return self.schedule(when - self.now, callback)
