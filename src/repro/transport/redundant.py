"""Redundant transport: k inferior sessions fused with deduplication.

This is the NetCo combiner expressed *as a transport layer*, after
pycyphal's ``redundant/`` transport: a :class:`RedundantSession` owns
one inferior session per branch; ``send`` broadcasts to every inferior,
and reception merges the k inbound streams with first-copy-wins
deduplication (no voting — that is what :class:`~repro.core.compare
.CompareCore` adds on top; the redundant session is the availability
half of the argument, usable standalone when integrity is not the
concern).

Deduplication keys on the wire ``seq`` when the inferior provides one,
falling back to the serialised wire image.  The seen-set is bounded by
``window`` (oldest keys are forgotten), matching the compare's bounded
buffer: a straggler arriving after its key aged out counts as fresh,
exactly like a straggler after the vote entry expired.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Sequence

from repro.transport.base import (
    Session,
    SessionSpec,
    Transport,
    TransportError,
)


class RedundantSession(Session):
    """k fused inferior sessions (one per branch), dedup on receive."""

    def __init__(
        self,
        transport: "RedundantTransport",
        spec: SessionSpec,
        inferiors: Sequence[Session],
        window: int = 4096,
    ) -> None:
        super().__init__(transport, spec)
        if not inferiors:
            raise TransportError("redundant session needs at least one inferior")
        self.inferiors: List[Session] = list(inferiors)
        self.window = window
        self.deduplicated = 0
        #: per-branch count of copies that arrived first (won the race)
        self.firsts: Dict[int, int] = {}
        self._seen: "OrderedDict[object, bool]" = OrderedDict()
        for index, inferior in enumerate(self.inferiors):
            inferior.set_receiver(self._merge_receiver(index))

    # -- sending: broadcast ---------------------------------------------
    def send(
        self,
        packet: object,
        branch: Optional[int] = None,
        claim: Optional[int] = None,
    ) -> None:
        self.stats.tx_messages += 1
        if self.transport._tracers:
            self.transport._trace(
                "tx", self.spec, packet, {"branch": branch, "claim": claim}
            )
        for inferior in self.inferiors:
            inferior.send(packet, branch=branch, claim=claim)

    # -- receiving: merge + dedup ---------------------------------------
    def _merge_receiver(self, index: int):
        def _on_message(packet, meta: dict) -> None:
            key = meta.get("seq")
            if key is None:
                key = bytes(packet.to_bytes())
            if key in self._seen:
                self.deduplicated += 1
                return
            self._seen[key] = True
            while len(self._seen) > self.window:
                self._seen.popitem(last=False)
            branch = meta.get("branch")
            if branch is None:
                branch = index
            self.firsts[branch] = self.firsts.get(branch, 0) + 1
            self.deliver(packet, dict(meta, branch=branch))

        return _on_message

    def close(self) -> None:
        for inferior in self.inferiors:
            inferior.set_receiver(None)
        super().close()


class RedundantTransport(Transport):
    """Fuses k inferior transports into one deduplicated stream."""

    def __init__(
        self,
        inferiors: Sequence[Transport],
        name: str = "redundant",
        window: int = 4096,
    ) -> None:
        if not inferiors:
            raise TransportError("redundant transport needs at least one inferior")
        super().__init__(name)
        self.inferiors: List[Transport] = list(inferiors)
        self.window = window

    def _make_session(self, spec: SessionSpec, **options: object) -> RedundantSession:
        sessions = [t.session(spec, **options) for t in self.inferiors]
        return RedundantSession(self, spec, sessions, window=self.window)

    def close(self) -> None:
        super().close()
        for inferior in self.inferiors:
            inferior.close()
