"""Datagram framing for transport messages over real sockets.

One UDP datagram carries one message::

    magic   2B  b"NC"
    version 1B
    mtype   1B  DATA / HELLO / BYE
    role    1B  session role (fanout/collect/release/egress)
    branch  2B  int16, -1 = none
    claim   2B  int16, -1 = none
    seq     4B  uint32 sender message counter
    t_ns    8B  uint64 sender virtual-time nanoseconds (informational)
    scope   1B length + utf-8 bytes
    payload rest: the packet wire image (Ethernet frame)

The payload is exactly what :meth:`repro.net.packet.Packet.to_bytes`
produces, so a compare process votes over the same bytes the DES
backend's bit-exact policy sees.  HELLO/BYE are session-lifecycle
control messages (no payload): a sender announces itself and signals
end-of-stream so the receiving process can stop without guessing.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.transport.base import (
    ROLE_COLLECT,
    ROLE_EGRESS,
    ROLE_FANOUT,
    ROLE_RELEASE,
    TransportError,
)

MAGIC = b"NC"
VERSION = 1

MSG_DATA = 0
MSG_HELLO = 1
MSG_BYE = 2

_ROLE_CODES = {
    ROLE_FANOUT: 0,
    ROLE_COLLECT: 1,
    ROLE_RELEASE: 2,
    ROLE_EGRESS: 3,
}
_CODE_ROLES = {code: role for role, code in _ROLE_CODES.items()}

_FIXED = struct.Struct("!2sBBBhhIQ")


@dataclass(frozen=True)
class WireMessage:
    """A decoded transport datagram."""

    mtype: int
    role: str
    scope: str
    branch: Optional[int]
    claim: Optional[int]
    seq: int
    t_ns: int
    payload: bytes

    def meta(self) -> dict:
        return {"branch": self.branch, "claim": self.claim, "seq": self.seq}


def encode_message(
    mtype: int,
    role: str,
    scope: str,
    payload: bytes = b"",
    branch: Optional[int] = None,
    claim: Optional[int] = None,
    seq: int = 0,
    t_ns: int = 0,
) -> bytes:
    role_code = _ROLE_CODES.get(role)
    if role_code is None:
        raise TransportError(f"unknown role {role!r}")
    scope_bytes = scope.encode("utf-8")
    if len(scope_bytes) > 255:
        raise TransportError(f"scope too long ({len(scope_bytes)} bytes)")
    head = _FIXED.pack(
        MAGIC,
        VERSION,
        mtype,
        role_code,
        -1 if branch is None else branch,
        -1 if claim is None else claim,
        seq & 0xFFFFFFFF,
        t_ns & 0xFFFFFFFFFFFFFFFF,
    )
    return head + bytes((len(scope_bytes),)) + scope_bytes + payload


def decode_message(data: bytes) -> WireMessage:
    if len(data) < _FIXED.size + 1:
        raise TransportError(f"datagram too short ({len(data)} bytes)")
    magic, version, mtype, role_code, branch, claim, seq, t_ns = _FIXED.unpack_from(
        data
    )
    if magic != MAGIC:
        raise TransportError(f"bad magic {magic!r}")
    if version != VERSION:
        raise TransportError(f"unsupported version {version}")
    role = _CODE_ROLES.get(role_code)
    if role is None:
        raise TransportError(f"unknown role code {role_code}")
    offset = _FIXED.size
    scope_len = data[offset]
    offset += 1
    if len(data) < offset + scope_len:
        raise TransportError("truncated scope")
    scope = data[offset:offset + scope_len].decode("utf-8")
    offset += scope_len
    return WireMessage(
        mtype=mtype,
        role=role,
        scope=scope,
        branch=None if branch < 0 else branch,
        claim=None if claim < 0 else claim,
        seq=seq,
        t_ns=t_ns,
        payload=data[offset:],
    )
