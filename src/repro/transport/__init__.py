"""Pluggable transports: how combiner bytes move between elements.

The NetCo elements (hub, endpoints, compare) are wired to each other
through :class:`~repro.transport.base.Transport` /
:class:`~repro.transport.base.Session` objects instead of talking to DES
ports directly.  Two byte-moving backends exist:

* :class:`~repro.transport.des.DesTransport` — the discrete-event
  backend: sessions wrap :class:`~repro.net.node.Port` objects and every
  record stays bit-identical to the pre-refactor code (the adapter is a
  zero-behaviour shim plus tracer hooks and counters);
* :class:`~repro.transport.udp.UdpTransport` — a real-time asyncio
  backend framing the same wire images into localhost UDP datagrams, so
  the *same* ``CompareCore``/``QuarantineController`` code votes over
  actual sockets between processes (``python -m repro live``).

:class:`~repro.transport.redundant.RedundantTransport` fuses k sessions
with first-copy-wins deduplication — structurally the NetCo combiner
expressed as a transport layer, after pycyphal's ``redundant/``
transport.  See DESIGN.md §14 for the interface contract.
"""

from repro.transport.base import (
    ROLE_COLLECT,
    ROLE_EGRESS,
    ROLE_FANOUT,
    ROLE_RELEASE,
    LoopbackTransport,
    Session,
    SessionSpec,
    Transport,
    TransportError,
    TransportTrace,
)
from repro.transport.des import DesTransport
from repro.transport.redundant import RedundantTransport

__all__ = [
    "ROLE_COLLECT",
    "ROLE_EGRESS",
    "ROLE_FANOUT",
    "ROLE_RELEASE",
    "DesTransport",
    "LoopbackTransport",
    "RedundantTransport",
    "Session",
    "SessionSpec",
    "Transport",
    "TransportError",
    "TransportTrace",
]
