"""Real-time asyncio UDP transport: the combiner over actual sockets.

One :class:`UdpTransport` owns one datagram socket.  Outbound sessions
carry a ``remote`` address; inbound dispatch matches a decoded
:class:`~repro.transport.wire.WireMessage` to the open session with the
same ``(role, scope, branch)``, falling back to ``(role, scope)`` — so a
compare process opens *one* collect session per scope and receives every
branch's copies through it, branch identity riding in the message.

Wire images are rebuilt into :class:`~repro.net.packet.Packet` objects
on receive (``Packet.parse``), so the compare's bit-exact policy hashes
the same bytes the DES backend sees.  What is *not* preserved over UDP
is DES timing exactness: arrival times are wall-clock, so anything
counted in packets (quorums, miss thresholds, probation credits) is
comparable across backends while latency histograms are not — see
DESIGN.md §14.
"""

from __future__ import annotations

import asyncio
from typing import Callable, Dict, Optional, Tuple

from repro.net.packet import Packet
from repro.transport.base import (
    Session,
    SessionSpec,
    Transport,
    TransportError,
)
from repro.transport.wire import (
    MSG_BYE,
    MSG_DATA,
    MSG_HELLO,
    WireMessage,
    decode_message,
    encode_message,
)

Address = Tuple[str, int]
#: control callback: fn(mtype, scope, branch, addr)
ControlHandler = Callable[[int, str, Optional[int], Address], None]


class UdpSession(Session):
    """One directed message stream over the owning socket."""

    def __init__(
        self,
        transport: "UdpTransport",
        spec: SessionSpec,
        remote: Optional[Address] = None,
    ) -> None:
        super().__init__(transport, spec)
        self.remote = remote
        self._seq = 0

    def send(
        self,
        packet: object,
        branch: Optional[int] = None,
        claim: Optional[int] = None,
    ) -> None:
        if branch is None:
            branch = self.spec.branch
        seq = self._seq
        self._seq += 1
        self.stats.tx_messages += 1
        transport: "UdpTransport" = self.transport  # type: ignore[assignment]
        if transport._tracers:
            transport._trace(
                "tx", self.spec, packet,
                {"branch": branch, "claim": claim, "seq": seq},
            )
        data = encode_message(
            MSG_DATA,
            self.spec.role,
            self.spec.scope,
            payload=bytes(packet.to_bytes()),
            branch=branch,
            claim=claim,
            seq=seq,
        )
        transport._sendto(data, self.remote)


class _Protocol(asyncio.DatagramProtocol):
    def __init__(self, transport: "UdpTransport") -> None:
        self._owner = transport

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self._owner._on_datagram(data, addr)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        self._owner.rx_errors += 1


class UdpTransport(Transport):
    """One socket, many sessions; see module docstring."""

    def __init__(
        self,
        local: Address = ("127.0.0.1", 0),
        name: str = "udp",
    ) -> None:
        super().__init__(name)
        self.local = local
        self.rx_errors = 0
        self.rx_unmatched = 0
        self._endpoint: Optional[asyncio.DatagramTransport] = None
        self._control: Optional[ControlHandler] = None
        self._default_remote: Optional[Address] = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> Address:
        """Bind the socket; returns the actual local address."""
        if self._endpoint is not None:
            return self.local_address()
        loop = asyncio.get_running_loop()
        self._endpoint, _ = await loop.create_datagram_endpoint(
            lambda: _Protocol(self), local_addr=self.local
        )
        return self.local_address()

    def local_address(self) -> Address:
        if self._endpoint is None:
            raise TransportError(f"transport {self.name!r} is not started")
        sock = self._endpoint.get_extra_info("sockname")
        return (sock[0], sock[1])

    def close(self) -> None:
        super().close()
        if self._endpoint is not None:
            self._endpoint.close()
            self._endpoint = None

    # -- sessions -------------------------------------------------------
    def set_default_remote(self, remote: Address) -> None:
        """Remote used by sessions opened without an explicit one."""
        self._default_remote = remote

    def _make_session(self, spec: SessionSpec, **options: object) -> UdpSession:
        remote = options.get("remote", self._default_remote)
        return UdpSession(self, spec, remote=remote)  # type: ignore[arg-type]

    # -- control messages (HELLO/BYE lifecycle) -------------------------
    def set_control_handler(self, fn: Optional[ControlHandler]) -> None:
        self._control = fn

    def send_control(
        self,
        mtype: int,
        scope: str,
        branch: Optional[int] = None,
        remote: Optional[Address] = None,
    ) -> None:
        if mtype not in (MSG_HELLO, MSG_BYE):
            raise TransportError(f"not a control message type: {mtype}")
        from repro.transport.base import ROLE_COLLECT

        data = encode_message(mtype, ROLE_COLLECT, scope, branch=branch)
        self._sendto(data, remote or self._default_remote)

    # -- datapath -------------------------------------------------------
    def _sendto(self, data: bytes, remote: Optional[Address]) -> None:
        if self._endpoint is None:
            raise TransportError(f"transport {self.name!r} is not started")
        if remote is None:
            raise TransportError("session has no remote address")
        self._endpoint.sendto(data, remote)

    def _on_datagram(self, data: bytes, addr: Address) -> None:
        try:
            message = decode_message(data)
        except TransportError:
            self.rx_errors += 1
            return
        if message.mtype != MSG_DATA:
            if self._control is not None:
                self._control(message.mtype, message.scope, message.branch, addr)
            return
        session = self._match(message)
        if session is None:
            self.rx_unmatched += 1
            return
        try:
            packet = Packet.parse(message.payload)
        except Exception:
            self.rx_errors += 1
            return
        meta = message.meta()
        meta["peer"] = addr
        session.deliver(packet, meta)

    def _match(self, message: WireMessage) -> Optional[Session]:
        exact = SessionSpec(message.scope, message.role, message.branch)
        session = self.sessions.get(exact)
        if session is not None:
            return session
        return self.sessions.get(SessionSpec(message.scope, message.role))
