"""The discrete-event transport backend: sessions over DES ports.

A :class:`DesSession` wraps one :class:`~repro.net.node.Port`; its
``send`` reproduces exactly what the pre-transport code did at each call
site, so every record, span and metric of a DES run is bit-identical to
the unrefactored tree (``tests/test_transport_layer.py`` pins this
against ``benchmarks/transport_baseline.json``):

* ``fanout``/``egress`` sessions transmit the packet object as handed in
  (the caller prepares the copy, exactly as the old ``port.send(copy)``
  call sites did);
* ``collect`` sessions attach the branch tag the compare host reads —
  the DES wire format for collect metadata is the packet's ``meta``
  dict, unchanged: ``{"branch": b, "endpoint": scope, "claim": c}``;
* ``release`` sessions copy and carry the claim back:
  ``{"claim": c}``.

Reception stays on the DES delivery path (links schedule
``node.receive``); nodes route inbound packets into
:meth:`~repro.transport.base.Session.deliver` so tracers and counters
see both directions.  The packet-train batch tier rides *below* this
interface (shared-batch port sends), which is fine: batches never cross
a vote boundary, and the batch fast paths are DES-only by construction.
"""

from __future__ import annotations

from typing import Optional, TYPE_CHECKING

from repro.transport.base import (
    ROLE_COLLECT,
    ROLE_RELEASE,
    Session,
    SessionSpec,
    Transport,
    TransportError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.node import Port
    from repro.sim import Simulator, TraceBus


def collect_meta(scope: str, branch: int, claim: Optional[int]) -> dict:
    """The DES collect-side wire format (a tagged packet's ``meta``)."""
    return {"branch": branch, "endpoint": scope, "claim": claim}


def read_collect_meta(packet) -> dict:
    """Decode the collect metadata off a DES-delivered packet."""
    return packet.meta or {}


class DesSession(Session):
    """One port-backed session (see module docstring for role framing)."""

    def __init__(self, transport: "DesTransport", spec: SessionSpec, port: "Port") -> None:
        super().__init__(transport, spec)
        self.port = port
        self._is_collect = spec.role == ROLE_COLLECT
        self._is_release = spec.role == ROLE_RELEASE

    def send(
        self,
        packet: object,
        branch: Optional[int] = None,
        claim: Optional[int] = None,
    ) -> None:
        self.stats.tx_messages += 1
        if self._is_collect:
            if branch is None:
                branch = self.spec.branch
            tagged = packet.copy()
            tagged.meta = collect_meta(self.spec.scope, branch, claim)
            packet = tagged
        elif self._is_release:
            dup = packet.copy()
            dup.meta = {"claim": claim}
            packet = dup
        if self.transport._tracers:
            self.transport._trace(
                "tx", self.spec, packet,
                {"branch": branch if branch is not None else self.spec.branch,
                 "claim": claim},
            )
        self.port.send(packet)


class DesTransport(Transport):
    """Session factory over an existing DES network's ports."""

    def __init__(
        self,
        sim: "Simulator",
        trace_bus: Optional["TraceBus"] = None,
        name: str = "des",
    ) -> None:
        super().__init__(name)
        self.sim = sim
        self.trace_bus = trace_bus

    def attach(self, spec: SessionSpec, port: "Port") -> DesSession:
        """Bind ``spec`` to a port (wiring-time helper for builders)."""
        return self.session(spec, port=port)  # type: ignore[return-value]

    def _make_session(self, spec: SessionSpec, **options: object) -> DesSession:
        port = options.get("port")
        if port is None:
            raise TransportError(
                f"DES session {spec} needs a port= at first open"
            )
        return DesSession(self, spec, port)  # type: ignore[arg-type]
