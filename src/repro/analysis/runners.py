"""Experiment runners: one function per table/figure of the paper.

Shared between the benchmark suite (``benchmarks/``) and the examples so
the exact workloads that regenerate each result live in one place.
Durations are scaled down from the paper's 10-second iperf runs to keep
the suite fast; throughput is a rate, so the scaling preserves shape.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.analysis.records import ExperimentRecord, paper_value
from repro.scenarios.testbed import Testbed, TestbedParams, build_testbed
from repro.traffic.iperf import (
    PathEndpoints,
    find_max_udp_rate,
    run_ping,
    run_tcp_flow,
    run_udp_flow,
)

TABLE1_SCENARIOS = ("linespeed", "dup3", "dup5", "central3", "central5")
ALL_SCENARIOS = ("linespeed", "dup3", "dup5", "central3", "central5", "pox3")


def _fresh_path(variant: str, seed: int, params: Optional[TestbedParams]) -> PathEndpoints:
    return build_testbed(variant, params=params, seed=seed).path()


# ----------------------------------------------------------------------
# Figure 4: TCP throughput
# ----------------------------------------------------------------------
def run_fig4_tcp(
    scenarios: Tuple[str, ...] = ALL_SCENARIOS,
    duration: float = 0.15,
    repetitions: int = 2,
    seed: int = 1,
    params: Optional[TestbedParams] = None,
) -> ExperimentRecord:
    """TCP bulk throughput per scenario, alternating directions as the
    paper's 10-forward + 10-reverse design does."""
    record = ExperimentRecord("Figure 4", "TCP throughput")
    for variant in scenarios:
        samples = []
        for rep in range(repetitions):
            testbed = build_testbed(variant, params=params, seed=seed + rep)
            path = testbed.path(reverse=bool(rep % 2))
            samples.append(run_tcp_flow(path, duration=duration).throughput_mbps)
        record.add(
            variant,
            "tcp_mbps",
            sum(samples) / len(samples),
            "Mbit/s",
            paper_value=paper_value(variant, "tcp_mbps"),
        )
    return record


# ----------------------------------------------------------------------
# Figure 5: max UDP throughput at < 0.5% loss
# ----------------------------------------------------------------------
def run_fig5_udp(
    scenarios: Tuple[str, ...] = ALL_SCENARIOS,
    duration: float = 0.08,
    iterations: int = 8,
    seed: int = 1,
    params: Optional[TestbedParams] = None,
) -> ExperimentRecord:
    """The paper's 'adjust -b until a maximum is reached' UDP search."""
    record = ExperimentRecord(
        "Figure 5", "max UDP throughput at loss < 0.5%"
    )
    base_params = params or TestbedParams()
    for variant in scenarios:
        _rate, result = find_max_udp_rate(
            lambda v=variant: _fresh_path(v, seed, params),
            duration=duration,
            iterations=iterations,
            send_cost=base_params.udp_send_cost,
        )
        record.add(
            variant,
            "udp_mbps",
            result.throughput_mbps,
            "Mbit/s",
            paper_value=paper_value(variant, "udp_mbps"),
            loss_rate=result.loss_rate,
        )
    return record


# ----------------------------------------------------------------------
# Figure 6: throughput vs loss rate (Central3)
# ----------------------------------------------------------------------
def run_fig6_loss_correlation(
    offered_mbps: Tuple[float, ...] = (60, 120, 180, 210, 230, 250, 270, 300, 350),
    duration: float = 0.08,
    seed: int = 1,
    params: Optional[TestbedParams] = None,
) -> List[Tuple[float, float, float]]:
    """Sweep offered UDP rate in Central3; return (offered, goodput,
    loss_rate) triples."""
    base_params = params or TestbedParams()
    points = []
    for rate in offered_mbps:
        result = run_udp_flow(
            _fresh_path("central3", seed, params),
            rate_bps=rate * 1e6,
            duration=duration,
            send_cost=base_params.udp_send_cost,
        )
        points.append((rate, result.throughput_mbps, result.loss_rate))
    return points


# ----------------------------------------------------------------------
# Figure 7: ping RTT
# ----------------------------------------------------------------------
def run_fig7_rtt(
    scenarios: Tuple[str, ...] = TABLE1_SCENARIOS,
    count: int = 50,
    sequences: int = 3,
    seed: int = 1,
    params: Optional[TestbedParams] = None,
) -> ExperimentRecord:
    """Three sequences of 50 echo cycles per scenario (paper Figure 7)."""
    record = ExperimentRecord("Figure 7", "ping round-trip time")
    for variant in scenarios:
        samples = []
        for rep in range(sequences):
            testbed = build_testbed(variant, params=params, seed=seed + rep)
            result = run_ping(testbed.path(), count=count, interval=1e-3)
            samples.append(result.avg_rtt_ms)
        record.add(
            variant,
            "rtt_ms",
            sum(samples) / len(samples),
            "ms",
            paper_value=paper_value(variant, "rtt_ms"),
        )
    return record


# ----------------------------------------------------------------------
# Figure 8: jitter vs UDP packet size
# ----------------------------------------------------------------------
def jitter_params(base: Optional[TestbedParams] = None) -> TestbedParams:
    """Parameters that expose the compare-cache cleanup mechanism.

    The paper explains Figure 8 by cache pressure: many small packets
    fill the compare's packet cache, each cleanup stalls the compare,
    and the stalls surface as jitter.  A small cache and a longer buffer
    timeout make the mechanism visible at the benchmark's packet rates.
    """
    base = base or TestbedParams()
    return replace(
        base,
        compare_cache_capacity=32,
        compare_buffer_timeout=20e-3,
    )


def run_fig8_jitter(
    scenarios: Tuple[str, ...] = TABLE1_SCENARIOS,
    payload_sizes: Tuple[int, ...] = (128, 256, 512, 1024, 1470),
    rate_mbps: float = 10.0,
    duration: float = 0.15,
    repetitions: int = 2,
    seed: int = 1,
    params: Optional[TestbedParams] = None,
) -> Dict[str, List[Tuple[int, float]]]:
    """RFC 3550 jitter per (scenario, payload size) at a fixed bitrate.

    Returns ``{scenario: [(size, jitter_ms), ...]}``.
    """
    tuned = jitter_params(params)
    series: Dict[str, List[Tuple[int, float]]] = {}
    for variant in scenarios:
        points = []
        for size in payload_sizes:
            samples = []
            for rep in range(repetitions):
                result = run_udp_flow(
                    build_testbed(variant, params=tuned, seed=seed + rep).path(),
                    rate_bps=rate_mbps * 1e6,
                    duration=duration,
                    payload_size=size,
                )
                samples.append(result.jitter_ms)
            points.append((size, sum(samples) / len(samples)))
        series[variant] = points
    return series


# ----------------------------------------------------------------------
# Table I: the three averages together
# ----------------------------------------------------------------------
def run_table1(
    duration_tcp: float = 0.15,
    duration_udp: float = 0.08,
    ping_count: int = 50,
    repetitions: int = 2,
    seed: int = 1,
    params: Optional[TestbedParams] = None,
) -> Dict[str, Dict[str, float]]:
    """Reproduce Table I; returns ``values[metric][scenario]``."""
    tcp = run_fig4_tcp(
        TABLE1_SCENARIOS,
        duration=duration_tcp,
        repetitions=repetitions,
        seed=seed,
        params=params,
    )
    udp = run_fig5_udp(
        TABLE1_SCENARIOS, duration=duration_udp, seed=seed, params=params
    )
    rtt = run_fig7_rtt(
        TABLE1_SCENARIOS, count=ping_count, sequences=repetitions, seed=seed,
        params=params,
    )
    values: Dict[str, Dict[str, float]] = {"tcp_mbps": {}, "udp_mbps": {}, "rtt_ms": {}}
    for row in tcp.rows:
        values["tcp_mbps"][row.scenario] = row.value
    for row in udp.rows:
        values["udp_mbps"][row.scenario] = row.value
    for row in rtt.rows:
        values["rtt_ms"][row.scenario] = row.value
    return values


def paper_table1_values() -> Dict[str, Dict[str, float]]:
    """The paper's Table I in the same layout as :func:`run_table1`."""
    from repro.analysis.records import PAPER_TABLE1

    values: Dict[str, Dict[str, float]] = {}
    for (scenario, metric), value in PAPER_TABLE1.items():
        values.setdefault(metric, {})[scenario] = value
    return values
