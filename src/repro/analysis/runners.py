"""Experiment runners: one function per table/figure of the paper.

Shared between the benchmark suite (``benchmarks/``) and the examples so
the exact workloads that regenerate each result live in one place.
Durations are scaled down from the paper's 10-second iperf runs to keep
the suite fast; throughput is a rate, so the scaling preserves shape.

Every runner decomposes into three pieces so the experiment farm
(:mod:`repro.farm`) can shard it across processes:

* ``specs_*`` builds the list of :class:`~repro.farm.spec.RunSpec`
  work items (each one an independent simulation, see
  :mod:`repro.analysis.tasks`);
* the farm executes them (inline when ``jobs=1``, sharded otherwise)
  and returns results keyed by spec content hash;
* ``merge_*`` folds the keyed results back into the figure's record.

The merge is pure and driven by the (deterministic) spec list, never by
completion order, so a parallel run is bit-identical to a serial one.
Calling ``run_*`` without a farm executes inline with no caching —
exactly the historical serial behaviour.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.records import ExperimentRecord, paper_value
from repro.analysis.tasks import params_to_dict
from repro.farm.executor import FarmExecutor
from repro.farm.spec import RunSpec
from repro.scenarios.testbed import TestbedParams

TABLE1_SCENARIOS = ("linespeed", "dup3", "dup5", "central3", "central5")
ALL_SCENARIOS = ("linespeed", "dup3", "dup5", "central3", "central5", "pox3")

#: ``{spec.key: task value}`` as returned by :meth:`FarmExecutor.run`
FarmResults = Dict[str, Any]


def _run(farm: Optional[FarmExecutor], specs: List[RunSpec]) -> FarmResults:
    """Execute specs on the given farm, or inline with no cache."""
    return (farm if farm is not None else FarmExecutor()).run(specs)


def _by_variant(specs: List[RunSpec], results: FarmResults) -> Dict[str, List[Any]]:
    """Group task values by scenario, in spec order (never completion
    order) — the heart of the deterministic merge."""
    grouped: Dict[str, List[Any]] = {}
    for spec in specs:
        grouped.setdefault(spec.kwargs["variant"], []).append(results[spec.key])
    return grouped


# ----------------------------------------------------------------------
# Figure 4: TCP throughput
# ----------------------------------------------------------------------
def specs_fig4(
    scenarios: Tuple[str, ...],
    duration: float,
    repetitions: int,
    seed: int,
    params: Optional[TestbedParams],
) -> List[RunSpec]:
    pd = params_to_dict(params)
    return [
        RunSpec(
            "fig4.tcp",
            {
                "variant": variant,
                "duration": duration,
                # alternate directions as the paper's 10+10 design does
                "reverse": bool(rep % 2),
                "params": pd,
            },
            seed=seed + rep,
        )
        for variant in scenarios
        for rep in range(repetitions)
    ]


def merge_fig4(specs: List[RunSpec], results: FarmResults) -> ExperimentRecord:
    record = ExperimentRecord("Figure 4", "TCP throughput")
    for variant, samples in _by_variant(specs, results).items():
        record.add(
            variant,
            "tcp_mbps",
            sum(samples) / len(samples),
            "Mbit/s",
            paper_value=paper_value(variant, "tcp_mbps"),
        )
    return record


def run_fig4_tcp(
    scenarios: Tuple[str, ...] = ALL_SCENARIOS,
    duration: float = 0.15,
    repetitions: int = 2,
    seed: int = 1,
    params: Optional[TestbedParams] = None,
    farm: Optional[FarmExecutor] = None,
) -> ExperimentRecord:
    """TCP bulk throughput per scenario, alternating directions as the
    paper's 10-forward + 10-reverse design does."""
    specs = specs_fig4(scenarios, duration, repetitions, seed, params)
    return merge_fig4(specs, _run(farm, specs))


# ----------------------------------------------------------------------
# Figure 5: max UDP throughput at < 0.5% loss
# ----------------------------------------------------------------------
def specs_fig5(
    scenarios: Tuple[str, ...],
    duration: float,
    iterations: int,
    seed: int,
    params: Optional[TestbedParams],
) -> List[RunSpec]:
    pd = params_to_dict(params)
    return [
        RunSpec(
            "fig5.udp_max",
            {
                "variant": variant,
                "duration": duration,
                "iterations": iterations,
                "params": pd,
            },
            seed=seed,
        )
        for variant in scenarios
    ]


def merge_fig5(specs: List[RunSpec], results: FarmResults) -> ExperimentRecord:
    record = ExperimentRecord("Figure 5", "max UDP throughput at loss < 0.5%")
    for variant, (sample,) in _by_variant(specs, results).items():
        record.add(
            variant,
            "udp_mbps",
            sample["mbps"],
            "Mbit/s",
            paper_value=paper_value(variant, "udp_mbps"),
            loss_rate=sample["loss_rate"],
        )
    return record


def run_fig5_udp(
    scenarios: Tuple[str, ...] = ALL_SCENARIOS,
    duration: float = 0.08,
    iterations: int = 8,
    seed: int = 1,
    params: Optional[TestbedParams] = None,
    farm: Optional[FarmExecutor] = None,
) -> ExperimentRecord:
    """The paper's 'adjust -b until a maximum is reached' UDP search."""
    specs = specs_fig5(scenarios, duration, iterations, seed, params)
    return merge_fig5(specs, _run(farm, specs))


# ----------------------------------------------------------------------
# Figure 6: throughput vs loss rate (Central3)
# ----------------------------------------------------------------------
def specs_fig6(
    offered_mbps: Tuple[float, ...],
    duration: float,
    seed: int,
    params: Optional[TestbedParams],
) -> List[RunSpec]:
    pd = params_to_dict(params)
    return [
        RunSpec(
            "fig6.udp_point",
            {
                "variant": "central3",
                "rate_mbps": rate,
                "duration": duration,
                "params": pd,
            },
            seed=seed,
        )
        for rate in offered_mbps
    ]


def merge_fig6(
    specs: List[RunSpec], results: FarmResults
) -> List[Tuple[float, float, float]]:
    return [tuple(results[spec.key]) for spec in specs]


def run_fig6_loss_correlation(
    offered_mbps: Tuple[float, ...] = (60, 120, 180, 210, 230, 250, 270, 300, 350),
    duration: float = 0.08,
    seed: int = 1,
    params: Optional[TestbedParams] = None,
    farm: Optional[FarmExecutor] = None,
) -> List[Tuple[float, float, float]]:
    """Sweep offered UDP rate in Central3; return (offered, goodput,
    loss_rate) triples."""
    specs = specs_fig6(offered_mbps, duration, seed, params)
    return merge_fig6(specs, _run(farm, specs))


# ----------------------------------------------------------------------
# Figure 7: ping RTT
# ----------------------------------------------------------------------
def specs_fig7(
    scenarios: Tuple[str, ...],
    count: int,
    sequences: int,
    seed: int,
    params: Optional[TestbedParams],
) -> List[RunSpec]:
    pd = params_to_dict(params)
    return [
        RunSpec(
            "fig7.rtt",
            {"variant": variant, "count": count, "params": pd},
            seed=seed + rep,
        )
        for variant in scenarios
        for rep in range(sequences)
    ]


def merge_fig7(specs: List[RunSpec], results: FarmResults) -> ExperimentRecord:
    record = ExperimentRecord("Figure 7", "ping round-trip time")
    for variant, samples in _by_variant(specs, results).items():
        record.add(
            variant,
            "rtt_ms",
            sum(samples) / len(samples),
            "ms",
            paper_value=paper_value(variant, "rtt_ms"),
        )
    return record


def run_fig7_rtt(
    scenarios: Tuple[str, ...] = TABLE1_SCENARIOS,
    count: int = 50,
    sequences: int = 3,
    seed: int = 1,
    params: Optional[TestbedParams] = None,
    farm: Optional[FarmExecutor] = None,
) -> ExperimentRecord:
    """Three sequences of 50 echo cycles per scenario (paper Figure 7)."""
    specs = specs_fig7(scenarios, count, sequences, seed, params)
    return merge_fig7(specs, _run(farm, specs))


# ----------------------------------------------------------------------
# Figure 8: jitter vs UDP packet size
# ----------------------------------------------------------------------
def jitter_params(base: Optional[TestbedParams] = None) -> TestbedParams:
    """Parameters that expose the compare-cache cleanup mechanism.

    The paper explains Figure 8 by cache pressure: many small packets
    fill the compare's packet cache, each cleanup stalls the compare,
    and the stalls surface as jitter.  A small cache and a longer buffer
    timeout make the mechanism visible at the benchmark's packet rates.
    """
    base = base or TestbedParams()
    return replace(
        base,
        compare_cache_capacity=32,
        compare_buffer_timeout=20e-3,
    )


def specs_fig8(
    scenarios: Tuple[str, ...],
    payload_sizes: Tuple[int, ...],
    rate_mbps: float,
    duration: float,
    repetitions: int,
    seed: int,
    params: Optional[TestbedParams],
) -> List[RunSpec]:
    tuned = params_to_dict(jitter_params(params))
    return [
        RunSpec(
            "fig8.jitter",
            {
                "variant": variant,
                "payload_size": size,
                "rate_mbps": rate_mbps,
                "duration": duration,
                "params": tuned,
            },
            seed=seed + rep,
        )
        for variant in scenarios
        for size in payload_sizes
        for rep in range(repetitions)
    ]


def merge_fig8(
    specs: List[RunSpec], results: FarmResults
) -> Dict[str, List[Tuple[int, float]]]:
    # group (variant, size) -> samples in spec order
    grouped: Dict[str, Dict[int, List[float]]] = {}
    for spec in specs:
        by_size = grouped.setdefault(spec.kwargs["variant"], {})
        by_size.setdefault(spec.kwargs["payload_size"], []).append(
            results[spec.key]
        )
    return {
        variant: [
            (size, sum(samples) / len(samples))
            for size, samples in by_size.items()
        ]
        for variant, by_size in grouped.items()
    }


def run_fig8_jitter(
    scenarios: Tuple[str, ...] = TABLE1_SCENARIOS,
    payload_sizes: Tuple[int, ...] = (128, 256, 512, 1024, 1470),
    rate_mbps: float = 10.0,
    duration: float = 0.15,
    repetitions: int = 2,
    seed: int = 1,
    params: Optional[TestbedParams] = None,
    farm: Optional[FarmExecutor] = None,
) -> Dict[str, List[Tuple[int, float]]]:
    """RFC 3550 jitter per (scenario, payload size) at a fixed bitrate.

    Returns ``{scenario: [(size, jitter_ms), ...]}``.
    """
    specs = specs_fig8(
        scenarios, payload_sizes, rate_mbps, duration, repetitions, seed, params
    )
    return merge_fig8(specs, _run(farm, specs))


# ----------------------------------------------------------------------
# Chaos battery: survivability under scheduled faults
# ----------------------------------------------------------------------
def specs_chaos(
    schedules: List[Dict[str, Any]],
    duration: float,
    rate_mbps: float,
    seeds: Tuple[int, ...],
    params: Optional[TestbedParams],
    variant: str = "central3",
) -> List[RunSpec]:
    """One spec per (schedule, seed): each is an independent chaos run,
    so a battery shards across farm jobs like any figure."""
    pd = params_to_dict(params)
    return [
        RunSpec(
            "chaos.run",
            {
                "variant": variant,
                "schedule": schedule,
                "duration": duration,
                "rate_mbps": rate_mbps,
                "params": pd,
            },
            seed=seed,
        )
        for schedule in schedules
        for seed in seeds
    ]


def merge_chaos(
    specs: List[RunSpec], results: FarmResults
) -> List[Dict[str, Any]]:
    """Survivability records in spec order (schedule-major, seed-minor)."""
    return [results[spec.key] for spec in specs]


def run_chaos_battery(
    schedules: Optional[List[Dict[str, Any]]] = None,
    duration: float = 0.05,
    rate_mbps: float = 20.0,
    seeds: Tuple[int, ...] = (1, 2),
    params: Optional[TestbedParams] = None,
    variant: str = "central3",
    farm: Optional[FarmExecutor] = None,
) -> List[Dict[str, Any]]:
    """Run a set of fault schedules against the combiner testbed.

    ``schedules`` are FaultSchedule dicts (JSON form); defaults to the
    built-in battery.  Returns one survivability record per
    (schedule, seed), in deterministic spec order.
    """
    if schedules is None:
        from repro.chaos import builtin_battery

        schedules = [s.to_dict() for s in builtin_battery().values()]
    specs = specs_chaos(schedules, duration, rate_mbps, seeds, params, variant)
    return merge_chaos(specs, _run(farm, specs))


# ----------------------------------------------------------------------
# Table I: the three averages together
# ----------------------------------------------------------------------
def run_table1(
    duration_tcp: float = 0.15,
    duration_udp: float = 0.08,
    ping_count: int = 50,
    repetitions: int = 2,
    seed: int = 1,
    params: Optional[TestbedParams] = None,
    farm: Optional[FarmExecutor] = None,
) -> Dict[str, Dict[str, float]]:
    """Reproduce Table I; returns ``values[metric][scenario]``."""
    tcp = run_fig4_tcp(
        TABLE1_SCENARIOS,
        duration=duration_tcp,
        repetitions=repetitions,
        seed=seed,
        params=params,
        farm=farm,
    )
    udp = run_fig5_udp(
        TABLE1_SCENARIOS, duration=duration_udp, seed=seed, params=params,
        farm=farm,
    )
    rtt = run_fig7_rtt(
        TABLE1_SCENARIOS, count=ping_count, sequences=repetitions, seed=seed,
        params=params, farm=farm,
    )
    values: Dict[str, Dict[str, float]] = {"tcp_mbps": {}, "udp_mbps": {}, "rtt_ms": {}}
    for row in tcp.rows:
        values["tcp_mbps"][row.scenario] = row.value
    for row in udp.rows:
        values["udp_mbps"][row.scenario] = row.value
    for row in rtt.rows:
        values["rtt_ms"][row.scenario] = row.value
    return values


def paper_table1_values() -> Dict[str, Dict[str, float]]:
    """The paper's Table I in the same layout as :func:`run_table1`."""
    from repro.analysis.records import PAPER_TABLE1

    values: Dict[str, Dict[str, float]] = {}
    for (scenario, metric), value in PAPER_TABLE1.items():
        values.setdefault(metric, {})[scenario] = value
    return values
