"""Experiment runners: one function per table/figure of the paper.

Shared between the benchmark suite (``benchmarks/``) and the examples so
the exact workloads that regenerate each result live in one place.
Durations are scaled down from the paper's 10-second iperf runs to keep
the suite fast; throughput is a rate, so the scaling preserves shape.

Since the plan refactor, every function here is a **thin shim** over the
declarative layer (:mod:`repro.plan`): the grid each figure sweeps is
described once by an :class:`~repro.plan.plan.ExperimentPlan` built in
:mod:`repro.plan.builtin` (and checked in as JSON under
``examples/plans/``).  The shims exist so the historical API keeps
working byte-for-byte:

* ``specs_*`` builds the same :class:`~repro.farm.spec.RunSpec` list
  the plan's ``expand()`` produces (identical content hashes, so old
  cache entries stay valid);
* ``run_*`` executes the plan on the farm (inline when no farm is
  given) and returns the identically-merged record;
* ``merge_*`` folds ``{spec.key: value}`` results through the same
  merge registry the plans use.

The merge is pure and driven by the (deterministic) spec list, never by
completion order, so a parallel run is bit-identical to a serial one.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.records import ExperimentRecord
from repro.analysis.tasks import params_to_dict
from repro.farm.executor import FarmExecutor
from repro.farm.spec import RunSpec
from repro.plan.builtin import (
    chaos_plan,
    fig4_plan,
    fig5_plan,
    fig6_plan,
    fig7_plan,
    fig8_plan,
    jitter_params,
    table1_plan,
)
from repro.plan.mergers import get_merger
from repro.scenarios.registry import figure_scenarios, table1_scenarios
from repro.scenarios.testbed import TestbedParams

#: scenario orderings — derived from the scenario registry, so a newly
#: registered scenario appears here (and in the CLI) automatically
TABLE1_SCENARIOS = table1_scenarios()
ALL_SCENARIOS = figure_scenarios()

#: ``{spec.key: task value}`` as returned by :meth:`FarmExecutor.run`
FarmResults = Dict[str, Any]

__all__ = [
    "ALL_SCENARIOS",
    "TABLE1_SCENARIOS",
    "FarmResults",
    "jitter_params",
    "merge_fig4",
    "merge_fig5",
    "merge_fig6",
    "merge_fig7",
    "merge_fig8",
    "merge_chaos",
    "paper_table1_values",
    "run_chaos_battery",
    "run_fig4_tcp",
    "run_fig5_udp",
    "run_fig6_loss_correlation",
    "run_fig7_rtt",
    "run_fig8_jitter",
    "run_table1",
    "specs_chaos",
    "specs_fig4",
    "specs_fig5",
    "specs_fig6",
    "specs_fig7",
    "specs_fig8",
]


def _stage_merge(plan, results: FarmResults):
    """Merge a single-stage plan's results (shim for merge_* below)."""
    stage = plan.stages[0]
    return get_merger(stage.merge["kind"]).merge(
        stage.expand(), results, stage.merge
    )


# ----------------------------------------------------------------------
# Figure 4: TCP throughput
# ----------------------------------------------------------------------
def specs_fig4(
    scenarios: Tuple[str, ...],
    duration: float,
    repetitions: int,
    seed: int,
    params: Optional[TestbedParams],
) -> List[RunSpec]:
    return fig4_plan(
        scenarios=scenarios, duration=duration, repetitions=repetitions,
        seed=seed, params=params_to_dict(params),
    ).expand()


def merge_fig4(specs: List[RunSpec], results: FarmResults) -> ExperimentRecord:
    return get_merger("mean_record").merge(
        specs, results, fig4_plan().stages[0].merge
    )


def run_fig4_tcp(
    scenarios: Tuple[str, ...] = ALL_SCENARIOS,
    duration: float = 0.15,
    repetitions: int = 2,
    seed: int = 1,
    params: Optional[TestbedParams] = None,
    farm: Optional[FarmExecutor] = None,
) -> ExperimentRecord:
    """TCP bulk throughput per scenario, alternating directions as the
    paper's 10-forward + 10-reverse design does."""
    return fig4_plan(
        scenarios=scenarios, duration=duration, repetitions=repetitions,
        seed=seed, params=params_to_dict(params),
    ).run(farm)


# ----------------------------------------------------------------------
# Figure 5: max UDP throughput at < 0.5% loss
# ----------------------------------------------------------------------
def specs_fig5(
    scenarios: Tuple[str, ...],
    duration: float,
    iterations: int,
    seed: int,
    params: Optional[TestbedParams],
) -> List[RunSpec]:
    return fig5_plan(
        scenarios=scenarios, duration=duration, iterations=iterations,
        seed=seed, params=params_to_dict(params),
    ).expand()


def merge_fig5(specs: List[RunSpec], results: FarmResults) -> ExperimentRecord:
    return get_merger("udp_max_record").merge(
        specs, results, fig5_plan().stages[0].merge
    )


def run_fig5_udp(
    scenarios: Tuple[str, ...] = ALL_SCENARIOS,
    duration: float = 0.08,
    iterations: int = 8,
    seed: int = 1,
    params: Optional[TestbedParams] = None,
    farm: Optional[FarmExecutor] = None,
) -> ExperimentRecord:
    """The paper's 'adjust -b until a maximum is reached' UDP search."""
    return fig5_plan(
        scenarios=scenarios, duration=duration, iterations=iterations,
        seed=seed, params=params_to_dict(params),
    ).run(farm)


# ----------------------------------------------------------------------
# Figure 6: throughput vs loss rate (Central3)
# ----------------------------------------------------------------------
def specs_fig6(
    offered_mbps: Tuple[float, ...],
    duration: float,
    seed: int,
    params: Optional[TestbedParams],
) -> List[RunSpec]:
    return fig6_plan(
        offered_mbps=offered_mbps, duration=duration, seed=seed,
        params=params_to_dict(params),
    ).expand()


def merge_fig6(
    specs: List[RunSpec], results: FarmResults
) -> List[Tuple[float, float, float]]:
    return get_merger("points").merge(specs, results, {})


def run_fig6_loss_correlation(
    offered_mbps: Tuple[float, ...] = (60, 120, 180, 210, 230, 250, 270, 300, 350),
    duration: float = 0.08,
    seed: int = 1,
    params: Optional[TestbedParams] = None,
    farm: Optional[FarmExecutor] = None,
) -> List[Tuple[float, float, float]]:
    """Sweep offered UDP rate in Central3; return (offered, goodput,
    loss_rate) triples."""
    return fig6_plan(
        offered_mbps=offered_mbps, duration=duration, seed=seed,
        params=params_to_dict(params),
    ).run(farm)


# ----------------------------------------------------------------------
# Figure 7: ping RTT
# ----------------------------------------------------------------------
def specs_fig7(
    scenarios: Tuple[str, ...],
    count: int,
    sequences: int,
    seed: int,
    params: Optional[TestbedParams],
) -> List[RunSpec]:
    return fig7_plan(
        scenarios=scenarios, count=count, sequences=sequences, seed=seed,
        params=params_to_dict(params),
    ).expand()


def merge_fig7(specs: List[RunSpec], results: FarmResults) -> ExperimentRecord:
    return get_merger("mean_record").merge(
        specs, results, fig7_plan().stages[0].merge
    )


def run_fig7_rtt(
    scenarios: Tuple[str, ...] = TABLE1_SCENARIOS,
    count: int = 50,
    sequences: int = 3,
    seed: int = 1,
    params: Optional[TestbedParams] = None,
    farm: Optional[FarmExecutor] = None,
) -> ExperimentRecord:
    """Three sequences of 50 echo cycles per scenario (paper Figure 7)."""
    return fig7_plan(
        scenarios=scenarios, count=count, sequences=sequences, seed=seed,
        params=params_to_dict(params),
    ).run(farm)


# ----------------------------------------------------------------------
# Figure 8: jitter vs UDP packet size
# ----------------------------------------------------------------------
def specs_fig8(
    scenarios: Tuple[str, ...],
    payload_sizes: Tuple[int, ...],
    rate_mbps: float,
    duration: float,
    repetitions: int,
    seed: int,
    params: Optional[TestbedParams],
) -> List[RunSpec]:
    return fig8_plan(
        scenarios=scenarios, payload_sizes=payload_sizes,
        rate_mbps=rate_mbps, duration=duration, repetitions=repetitions,
        seed=seed, params=params_to_dict(params),
    ).expand()


def merge_fig8(
    specs: List[RunSpec], results: FarmResults
) -> Dict[str, List[Tuple[int, float]]]:
    return get_merger("size_series").merge(specs, results, {})


def run_fig8_jitter(
    scenarios: Tuple[str, ...] = TABLE1_SCENARIOS,
    payload_sizes: Tuple[int, ...] = (128, 256, 512, 1024, 1470),
    rate_mbps: float = 10.0,
    duration: float = 0.15,
    repetitions: int = 2,
    seed: int = 1,
    params: Optional[TestbedParams] = None,
    farm: Optional[FarmExecutor] = None,
) -> Dict[str, List[Tuple[int, float]]]:
    """RFC 3550 jitter per (scenario, payload size) at a fixed bitrate.

    Returns ``{scenario: [(size, jitter_ms), ...]}``.
    """
    return fig8_plan(
        scenarios=scenarios, payload_sizes=payload_sizes,
        rate_mbps=rate_mbps, duration=duration, repetitions=repetitions,
        seed=seed, params=params_to_dict(params),
    ).run(farm)


# ----------------------------------------------------------------------
# Chaos battery: survivability under scheduled faults
# ----------------------------------------------------------------------
def specs_chaos(
    schedules: List[Dict[str, Any]],
    duration: float,
    rate_mbps: float,
    seeds: Tuple[int, ...],
    params: Optional[TestbedParams],
    variant: str = "central3",
) -> List[RunSpec]:
    """One spec per (schedule, seed): each is an independent chaos run,
    so a battery shards across farm jobs like any figure."""
    return chaos_plan(
        schedules=schedules, duration=duration, rate_mbps=rate_mbps,
        seeds=seeds, params=params_to_dict(params), variant=variant,
    ).expand()


def merge_chaos(
    specs: List[RunSpec], results: FarmResults
) -> List[Dict[str, Any]]:
    """Survivability records in spec order (schedule-major, seed-minor)."""
    return get_merger("records_list").merge(specs, results, {})


def run_chaos_battery(
    schedules: Optional[List[Dict[str, Any]]] = None,
    duration: float = 0.05,
    rate_mbps: float = 20.0,
    seeds: Tuple[int, ...] = (1, 2),
    params: Optional[TestbedParams] = None,
    variant: str = "central3",
    farm: Optional[FarmExecutor] = None,
) -> List[Dict[str, Any]]:
    """Run a set of fault schedules against the combiner testbed.

    ``schedules`` are FaultSchedule dicts (JSON form); defaults to the
    built-in battery.  Returns one survivability record per
    (schedule, seed), in deterministic spec order.
    """
    return chaos_plan(
        schedules=schedules, duration=duration, rate_mbps=rate_mbps,
        seeds=seeds, params=params_to_dict(params), variant=variant,
    ).run(farm)


# ----------------------------------------------------------------------
# Table I: the three averages together, one farm batch
# ----------------------------------------------------------------------
def run_table1(
    duration_tcp: float = 0.15,
    duration_udp: float = 0.08,
    ping_count: int = 50,
    repetitions: int = 2,
    seed: int = 1,
    params: Optional[TestbedParams] = None,
    farm: Optional[FarmExecutor] = None,
) -> Dict[str, Dict[str, float]]:
    """Reproduce Table I; returns ``values[metric][scenario]``.

    The TCP, UDP and RTT stages expand into a single farm batch (shards
    never idle between metrics); per-sample values and the merged table
    are bit-identical to the historical three-batch run.
    """
    return table1_plan(
        duration_tcp=duration_tcp, duration_udp=duration_udp,
        ping_count=ping_count, repetitions=repetitions, seed=seed,
        params=params_to_dict(params),
    ).run(farm)


def paper_table1_values() -> Dict[str, Dict[str, float]]:
    """The paper's Table I in the same layout as :func:`run_table1`."""
    from repro.analysis.records import PAPER_TABLE1

    values: Dict[str, Dict[str, float]] = {}
    for (scenario, metric), value in PAPER_TABLE1.items():
        values.setdefault(metric, {})[scenario] = value
    return values
