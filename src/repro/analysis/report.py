"""Plain-text rendering of experiment records (the bench output)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.records import ExperimentRecord


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], indent: str = "  "
) -> str:
    """Monospace table with column auto-sizing."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    header = indent + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header)
    lines.append(indent + "  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            indent + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def render_record(record: ExperimentRecord) -> str:
    """Render one experiment with measured-vs-paper columns."""
    headers = ["scenario", "metric", "measured", "paper", "ratio"]
    rows: List[List[str]] = []
    for row in record.rows:
        paper = f"{row.paper_value:g}" if row.paper_value is not None else "-"
        ratio = (
            f"{row.ratio_to_paper:.2f}x" if row.ratio_to_paper is not None else "-"
        )
        rows.append(
            [row.scenario, f"{row.metric} ({row.unit})", f"{row.value:g}", paper, ratio]
        )
    title = f"== {record.experiment}: {record.description} =="
    return title + "\n" + format_table(headers, rows)


def render_table1(
    values: Dict[str, Dict[str, float]],
    paper: Optional[Dict[str, Dict[str, float]]] = None,
) -> str:
    """Render in the layout of the paper's Table I.

    ``values[metric][scenario]`` -> measured number.  Metrics are the
    Table I rows: ``tcp_mbps``, ``udp_mbps``, ``rtt_ms``.
    """
    scenarios = ["linespeed", "dup3", "dup5", "central3", "central5"]
    metric_labels = {
        "tcp_mbps": "avg tcp bandwidth in Mbits/s",
        "udp_mbps": "avg udp bandwidth in Mbits/s",
        "rtt_ms": "avg RTT in ms",
    }
    headers = [""] + [s.capitalize() for s in scenarios]
    rows = []
    for metric, label in metric_labels.items():
        row = [label]
        for scenario in scenarios:
            value = values.get(metric, {}).get(scenario)
            cell = f"{value:.3g}" if value is not None else "-"
            if paper is not None:
                ref = paper.get(metric, {}).get(scenario)
                if ref is not None:
                    cell += f" ({ref:g})"
            row.append(cell)
        rows.append(row)
    note = "  (measured, paper value in parentheses)" if paper else ""
    return "TABLE I - AVERAGE MEASUREMENT RESULTS" + note + "\n" + format_table(
        headers, rows
    )


def render_series(
    title: str,
    x_label: str,
    y_label: str,
    points: Sequence[tuple],
) -> str:
    """Render a figure's data series as a two-column table."""
    rows = [[f"{x:g}", f"{y:g}"] for x, y in points]
    return f"== {title} ==\n" + format_table([x_label, y_label], rows)


def render_farm_summary(progress, cache=None) -> str:
    """One-table summary of a farm run (tasks, wall time, cache).

    ``progress`` is a :class:`repro.farm.progress.FarmProgress`;
    ``cache`` an optional :class:`repro.farm.cache.ResultCache`.
    """
    snap = progress.snapshot()
    headers = ["tasks", "cached", "executed", "failed", "retried",
               "task wall", "elapsed"]
    row = [
        str(snap["queued"]),
        str(snap["cache_hits"]),
        str(snap["executed"]),
        str(snap["failed"]),
        str(snap["retried"]),
        f"{snap['task_wall_s']:.2f}s",
        f"{snap['elapsed_s']:.2f}s",
    ]
    text = "[farm] " + ", ".join(
        f"{h}={v}" for h, v in zip(headers, row)
    )
    if cache is not None and cache.enabled:
        rate = cache.hit_rate
        text += (
            f"\n[farm] cache {cache.root}: {cache.hits} hit(s), "
            f"{cache.misses} miss(es)"
            + (f" ({100 * rate:.0f}% hits)" if rate is not None else "")
        )
    return text
