"""Command-line experiment runner: ``python -m repro <experiment>``.

Regenerates any table or figure of the paper without going through
pytest.  Useful for quick exploration and for recording results:

    python -m repro table1
    python -m repro fig6 --quick
    python -m repro casestudy
    python -m repro all --jobs 4
    python -m repro plan run examples/plans/fig5.json --jobs 4

Every figure/table command is an alias for a built-in declarative
:class:`~repro.plan.plan.ExperimentPlan` (checked in as JSON under
``examples/plans/``); ``python -m repro plan run|validate|list`` works
with arbitrary user-written plans.

Figure/table experiments run on the experiment farm (:mod:`repro.farm`):
``--jobs N`` shards their independent simulations over N worker
processes, and results are cached on disk under ``.repro-cache/`` keyed
by content hash (``--no-cache`` disables, ``--cache-dir`` relocates).
Parallel runs merge by spec key, so ``--jobs 4`` output is identical to
``--jobs 1``.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
import time
from typing import Callable, Dict, Optional

from repro.analysis.report import (
    render_farm_summary,
    render_record,
    render_series,
    render_table1,
)
from repro.analysis.runners import paper_table1_values
from repro.farm import FarmExecutor, FarmTaskError, ResultCache
from repro.plan.builtin import builtin_plan
from repro.scenarios.registry import scenario_names

#: path of the --chaos spec file, set by main() before dispatch
_CHAOS_SPEC: Optional[str] = None

#: scenario for the `chaos` experiment, set by main() before dispatch
_CHAOS_VARIANT: str = "central3"

#: packets per train for the batch tier (--train), set by main()
_TRAIN: int = 1


def _train_overrides() -> Dict[str, object]:
    """Plan overrides carrying ``--train`` (empty at the default 1, so
    presets keep their own ``params``)."""
    if _TRAIN > 1:
        return {"params": {"batch_train": _TRAIN}}
    return {}


def _cmd_table1(quick: bool, farm: Optional[FarmExecutor]) -> list:
    # one plan, one farm batch: the tcp/udp/rtt specs shard together
    results = builtin_plan("table1", quick=quick, **_train_overrides()).run(farm)
    print(render_table1(results, paper=paper_table1_values()))
    return [{"scenario": scenario, **metrics}
            for scenario, metrics in results.items()]


def _cmd_fig4(quick: bool, farm: Optional[FarmExecutor]) -> list:
    record = builtin_plan("fig4", quick=quick, **_train_overrides()).run(farm)
    print(render_record(record))
    return [record.to_dict()]


def _cmd_fig5(quick: bool, farm: Optional[FarmExecutor]) -> list:
    record = builtin_plan("fig5", quick=quick, **_train_overrides()).run(farm)
    print(render_record(record))
    return [record.to_dict()]


def _cmd_fig6(quick: bool, farm: Optional[FarmExecutor]) -> list:
    points = builtin_plan("fig6", quick=quick, **_train_overrides()).run(farm)
    print(render_series("Figure 6: Central3 goodput", "offered Mbit/s",
                        "goodput Mbit/s", [(o, round(g, 1)) for o, g, _ in points]))
    print(render_series("Figure 6: Central3 loss", "offered Mbit/s",
                        "loss rate", [(o, round(l, 4)) for o, _, l in points]))
    return [{"offered_mbps": o, "goodput_mbps": round(g, 3),
             "loss_rate": round(l, 6)} for o, g, l in points]


def _cmd_fig7(quick: bool, farm: Optional[FarmExecutor]) -> list:
    record = builtin_plan("fig7", quick=quick, **_train_overrides()).run(farm)
    print(render_record(record))
    return [record.to_dict()]


def _cmd_fig8(quick: bool, farm: Optional[FarmExecutor]) -> list:
    series = builtin_plan("fig8", quick=quick, **_train_overrides()).run(farm)
    records = []
    for scenario, points in series.items():
        print(render_series(f"Figure 8 — {scenario}", "payload B",
                            "jitter ms", [(s, round(j, 5)) for s, j in points]))
        records.append({"scenario": scenario,
                        "points": [[s, round(j, 6)] for s, j in points]})
    return records


def _cmd_chaos(quick: bool, farm: Optional[FarmExecutor]) -> list:
    from repro.chaos import FaultSchedule

    schedules = None
    if _CHAOS_SPEC is not None:
        schedules = [FaultSchedule.from_json_file(_CHAOS_SPEC).to_dict()]
    records = builtin_plan(
        "chaos", quick=quick, schedules=schedules, variant=_CHAOS_VARIANT,
        **_train_overrides(),
    ).run(farm)
    for r in records:
        print(
            f"chaos {r['schedule']} seed={r['seed']}: "
            f"sent={r['sent']} received={r['received']} "
            f"loss_rate={r['loss_rate']:.4f} faults={len(r['injections'])} "
            f"quarantined={r['quarantined']} readmitted={r['readmitted']} "
            f"post_quarantine_gaps={r['post_quarantine_gaps']}"
        )
    return records


def _cmd_ctrlbft(quick: bool, farm: Optional[FarmExecutor]) -> list:
    records = builtin_plan("ctrlbft", quick=quick, **_train_overrides()).run(farm)
    for r in records:
        detect = (
            f"{r['detection_latency']:.4f}"
            if r["detection_latency"] is not None
            else "-"
        )
        print(
            f"ctrlbft {r['variant']} ctrl_k={r['ctrl_k']} "
            f"adversary={r['adversary']} seed={r['seed']}: "
            f"sent={r['sent']} received={r['received']} "
            f"loss_rate={r['loss_rate']:.4f} fp={r['data_fingerprint']} "
            f"blocked={r['ctrl']['blocked']} "
            f"malicious_installed={r['malicious_installed']} "
            f"ctrl_quarantined={r['ctrl_quarantined']} "
            f"detection_latency={detect}"
        )
    return records


def _cmd_advbench(quick: bool, farm: Optional[FarmExecutor]) -> list:
    rows = builtin_plan("advbench", quick=quick, **_train_overrides()).run(farm)
    for r in rows:
        alarm = (
            f"{r['time_to_first_alarm']:.4f}"
            if r["time_to_first_alarm"] is not None else "-"
        )
        detect = (
            f"{r['detection_latency']:.4f}"
            if r["detection_latency"] is not None else "-"
        )
        print(
            f"advbench {r['variant']} k={r['k']} "
            f"adversary={r['adversary']} profile={r['profile']}: "
            f"detected={r['detected']}/{r['seeds']} "
            f"t_alarm={alarm} t_quarantine={detect} "
            f"tampered={r['tampered']} "
            f"leaked={r['leaked_max']} "
            f"masked_damage={r['masked_damage_max']} "
            f"false_quarantine_rate={r['false_quarantine_rate_max']:.2f}"
        )
    return rows


def _cmd_casestudy(quick: bool, farm: Optional[FarmExecutor]) -> list:
    from repro.analysis.report import format_table
    from repro.scenarios.datacenter import DatacenterCaseStudy

    study = DatacenterCaseStudy(seed=1, echo_count=10)
    rows = []
    records = []
    for result in (study.run_baseline(), study.run_attack(), study.run_protected()):
        rows.append([
            result.scenario,
            str(result.requests_sent),
            str(result.requests_at_fw1),
            str(result.responses_at_vm1),
            str(result.screening.strays),
        ])
        records.append({
            "scenario": result.scenario,
            "requests_sent": result.requests_sent,
            "requests_at_fw1": result.requests_at_fw1,
            "responses_at_vm1": result.responses_at_vm1,
            "strays": result.screening.strays,
        })
    print("Section VI case study")
    print(format_table(["scenario", "sent", "req@fw1", "resp@vm1", "strays"], rows))
    return records


def _cmd_virtualized(quick: bool, farm: Optional[FarmExecutor]) -> list:
    from repro.adversary import PayloadCorruptionBehavior
    from repro.scenarios.virtualized import build_virtualized_scenario
    from repro.traffic.iperf import PathEndpoints, run_ping

    records = []
    for k in (2, 3):
        scenario = build_virtualized_scenario(k=k, paths_available=3, seed=1)
        PayloadCorruptionBehavior().attach(scenario.transit(1))
        result = run_ping(
            PathEndpoints(scenario.network, scenario.src, scenario.dst),
            count=10, interval=1e-3,
        )
        scenario.compare_core.flush()
        verdict = "PREVENTED" if result.received == result.sent else "DETECTED"
        print(f"virtualized k={k} + corrupt vendor: "
              f"{result.received}/{result.sent} pings, "
              f"{scenario.compare_core.alarms.count()} alarms -> {verdict}")
        records.append({"k": k, "sent": result.sent, "received": result.received,
                        "alarms": scenario.compare_core.alarms.count(),
                        "verdict": verdict})
    return records


def _run_profiled(name: str, quick: bool, farm: Optional[FarmExecutor],
                  top: int = 25) -> list:
    """Run one experiment under cProfile, then print the hot spots."""
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return COMMANDS[name](quick, farm)
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative")
        print(f"--- profile: {name} (top {top} by cumulative time) ---",
              file=sys.stderr)
        stats.print_stats(top)


COMMANDS: Dict[str, Callable[[bool, Optional[FarmExecutor]], list]] = {
    "table1": _cmd_table1,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "advbench": _cmd_advbench,
    "casestudy": _cmd_casestudy,
    "chaos": _cmd_chaos,
    "ctrlbft": _cmd_ctrlbft,
    "virtualized": _cmd_virtualized,
}


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "obs":
        # Observability subcommands live in their own parser; the heavy
        # imports stay lazy so `python -m repro fig5` never pays them.
        from repro.obs.cli import obs_main

        return obs_main(argv[1:])
    if argv and argv[0] == "plan":
        # Declarative experiment plans: run/validate/list JSON plans.
        from repro.plan.cli import plan_main

        return plan_main(argv[1:])
    if argv and argv[0] == "fleet":
        # Fleet telemetry tools: watch/replay/profile.
        from repro.obs.fleet_cli import fleet_main

        return fleet_main(argv[1:])
    if argv and argv[0] == "live":
        # Real-socket runs: the combiner over localhost UDP processes.
        from repro.live.cli import live_main

        return live_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the NetCo paper's tables and figures "
                    "(`python -m repro plan --help` for declarative plans, "
                    "`python -m repro obs --help` for observability tools, "
                    "`python -m repro fleet --help` for live fleet telemetry, "
                    "`python -m repro live demo` for the real-socket demo).",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(COMMANDS) + ["all"],
        help="which experiment to run",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="shorter durations / fewer repetitions",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="shard independent simulations over N worker processes "
             "(default 1: inline, no subprocesses)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir", default=".repro-cache", metavar="DIR",
        help="result-cache location (default .repro-cache/)",
    )
    parser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock timeout on the farm",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run each experiment under cProfile and print the top "
             "cumulative-time entries (use with --jobs 1: subprocess "
             "work is invisible to the profiler)",
    )
    parser.add_argument(
        "--chaos", default=None, metavar="SPEC.json",
        help="FaultSchedule JSON for the `chaos` experiment (default: "
             "the built-in battery)",
    )
    parser.add_argument(
        "--variant", default="central3", choices=scenario_names(),
        help="scenario for the `chaos` experiment (choices come from "
             "the scenario registry)",
    )
    parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="write a RunReport JSON (experiment records + farm progress) "
             "here after the run; composes with --train N (records stay "
             "bit-identical) and with `repro plan run --report` for "
             "declarative plans, so reports diff cleanly across tiers",
    )
    parser.add_argument(
        "--train", type=int, default=1, metavar="N",
        help="packets per train for the data-plane batch tier (default 1: "
             "per-packet events; results are bit-identical either way)",
    )
    parser.add_argument(
        "--events-log", default=None, metavar="PATH",
        help="append every farm event (queued/cached/started/done/retried/"
             "failed + bounded per-run digests) to a JSONL log with gapless "
             "sequence numbers; replay with `repro fleet replay PATH`",
    )
    parser.add_argument(
        "--serve", type=int, default=None, metavar="PORT", nargs="?",
        const=0,
        help="serve a live dashboard on PORT (omit PORT for an ephemeral "
             "one; the bound URL is printed to stderr): /metrics is "
             "Prometheus text, /fleet a JSON snapshot; tail it with "
             "`repro fleet watch --url URL`",
    )
    parser.add_argument(
        "--serve-grace", type=float, default=0.0, metavar="SECONDS",
        help="keep the dashboard serving this long after the run finishes "
             "(lets scrapers catch the final state)",
    )
    parser.add_argument(
        "--profile-shards", default=None, metavar="DIR", nargs="?",
        const=".repro-profile",
        help="run every farm task under cProfile, dumping per-shard stats "
             "into DIR (default .repro-profile/) with an aggregated top-N "
             "table on stderr; re-aggregate with `repro fleet profile DIR`",
    )
    args = parser.parse_args(argv)
    if args.train < 1:
        parser.error(f"--train must be >= 1, got {args.train}")

    global _CHAOS_SPEC, _CHAOS_VARIANT, _TRAIN
    _CHAOS_SPEC = args.chaos
    _CHAOS_VARIANT = args.variant
    _TRAIN = args.train

    names = sorted(COMMANDS) if args.experiment == "all" else [args.experiment]
    all_records = []
    farm_snapshots = {}
    telemetry = None
    if args.events_log or args.serve is not None:
        from repro.obs.wiring import FleetTelemetry

        telemetry = FleetTelemetry(
            events_log=args.events_log,
            serve=args.serve,
            serve_grace=args.serve_grace,
            name=args.experiment,
        )
    try:
        for name in names:
            registry_scope = (
                telemetry.farm_registry() if telemetry is not None
                else contextlib.nullcontext()
            )
            with registry_scope:
                farm = FarmExecutor(
                    jobs=args.jobs,
                    cache=(
                        None if args.no_cache
                        else ResultCache(root=args.cache_dir)
                    ),
                    timeout=args.task_timeout,
                    profile_dir=args.profile_shards,
                )
            if telemetry is not None:
                telemetry.attach(farm, name=name)
            start = time.time()
            try:
                if args.profile:
                    records = _run_profiled(name, args.quick, farm)
                else:
                    records = COMMANDS[name](args.quick, farm)
            except FarmTaskError as exc:
                print(f"error: {exc}", file=sys.stderr)
                if farm.progress.queued:
                    print(render_farm_summary(farm.progress, cache=farm.cache),
                          file=sys.stderr)
                return 1
            if farm.progress.queued:
                print(render_farm_summary(farm.progress, cache=farm.cache))
            print(f"[{name} finished in {time.time() - start:.1f}s]\n")
            for record in records or ():
                all_records.append({"experiment": name, **record})
            if farm.progress.queued:
                farm_snapshots[name] = farm.progress.snapshot()
        if args.profile_shards is not None:
            from repro.farm.profiling import aggregate_profiles

            aggregated = aggregate_profiles(args.profile_shards)
            if aggregated is not None:
                count, table = aggregated
                print(f"--- shard profiles: {count} dump(s) in "
                      f"{args.profile_shards} ---", file=sys.stderr)
                print(table, file=sys.stderr)
    finally:
        if telemetry is not None:
            telemetry.close()
    if args.report:
        from repro.obs.report import RunReport

        RunReport(
            name=args.experiment,
            meta={"quick": args.quick, "jobs": args.jobs,
                  "experiments": names},
            records=all_records,
            farm=farm_snapshots or None,
        ).save(args.report)
        print(f"[run report written to {args.report}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
