"""Experiment records, runners and plain-text reporting."""

from repro.analysis.records import (
    ExperimentRecord,
    MeasurementRow,
    PAPER_TABLE1,
    paper_value,
)
from repro.analysis.monitor import BranchHealth, HealthMonitor, SEVERITIES
from repro.analysis.report import (
    format_table,
    render_record,
    render_series,
    render_table1,
)
from repro.analysis.runners import (
    ALL_SCENARIOS,
    TABLE1_SCENARIOS,
    jitter_params,
    paper_table1_values,
    run_fig4_tcp,
    run_fig5_udp,
    run_fig6_loss_correlation,
    run_fig7_rtt,
    run_fig8_jitter,
    run_table1,
)

__all__ = [
    "ExperimentRecord",
    "MeasurementRow",
    "PAPER_TABLE1",
    "paper_value",
    "BranchHealth",
    "HealthMonitor",
    "SEVERITIES",
    "format_table",
    "render_record",
    "render_series",
    "render_table1",
    "ALL_SCENARIOS",
    "TABLE1_SCENARIOS",
    "jitter_params",
    "paper_table1_values",
    "run_fig4_tcp",
    "run_fig5_udp",
    "run_fig6_loss_correlation",
    "run_fig7_rtt",
    "run_fig8_jitter",
    "run_table1",
]
