"""Run-record schema shared by benchmarks, examples and EXPERIMENTS.md.

Every experiment produces :class:`MeasurementRow` items; a
:class:`ExperimentRecord` groups the rows of one table/figure and can be
rendered by :mod:`repro.analysis.report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class MeasurementRow:
    """One measured point: a (scenario, metric) cell with optional
    paper reference value for side-by-side reporting."""

    scenario: str
    metric: str
    value: float
    unit: str
    paper_value: Optional[float] = None
    detail: Dict[str, float] = field(default_factory=dict)

    @property
    def ratio_to_paper(self) -> Optional[float]:
        if self.paper_value in (None, 0):
            return None
        return self.value / self.paper_value


@dataclass
class ExperimentRecord:
    """All rows of one table or figure reproduction."""

    experiment: str  # e.g. "Table I", "Figure 4"
    description: str
    rows: List[MeasurementRow] = field(default_factory=list)

    def add(
        self,
        scenario: str,
        metric: str,
        value: float,
        unit: str,
        paper_value: Optional[float] = None,
        **detail: float,
    ) -> MeasurementRow:
        row = MeasurementRow(
            scenario=scenario,
            metric=metric,
            value=value,
            unit=unit,
            paper_value=paper_value,
            detail=dict(detail),
        )
        self.rows.append(row)
        return row

    def by_metric(self, metric: str) -> List[MeasurementRow]:
        return [r for r in self.rows if r.metric == metric]

    def value_of(self, scenario: str, metric: str) -> Optional[float]:
        for row in self.rows:
            if row.scenario == scenario and row.metric == metric:
                return row.value
        return None

    def ordering(self, metric: str, descending: bool = True) -> List[str]:
        """Scenario names ordered by measured value for one metric."""
        rows = sorted(
            self.by_metric(metric), key=lambda r: r.value, reverse=descending
        )
        return [r.scenario for r in rows]

    # ------------------------------------------------------------------
    # serialisation (archival of reproduction runs)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "experiment": self.experiment,
            "description": self.description,
            "rows": [
                {
                    "scenario": r.scenario,
                    "metric": r.metric,
                    "value": r.value,
                    "unit": r.unit,
                    "paper_value": r.paper_value,
                    "detail": r.detail,
                }
                for r in self.rows
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        import json

        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentRecord":
        record = cls(data["experiment"], data["description"])
        for row in data["rows"]:
            record.add(
                row["scenario"],
                row["metric"],
                row["value"],
                row["unit"],
                paper_value=row.get("paper_value"),
                **row.get("detail", {}),
            )
        return record


#: paper reference values (Table I of the paper)
PAPER_TABLE1 = {
    ("linespeed", "tcp_mbps"): 474.0,
    ("dup3", "tcp_mbps"): 122.0,
    ("dup5", "tcp_mbps"): 72.0,
    ("central3", "tcp_mbps"): 145.0,
    ("central5", "tcp_mbps"): 78.0,
    ("linespeed", "udp_mbps"): 278.0,
    ("dup3", "udp_mbps"): 266.0,
    ("dup5", "udp_mbps"): 149.0,
    ("central3", "udp_mbps"): 245.0,
    ("central5", "udp_mbps"): 156.0,
    ("linespeed", "rtt_ms"): 0.181,
    ("dup3", "rtt_ms"): 0.189,
    ("dup5", "rtt_ms"): 0.26,
    ("central3", "rtt_ms"): 0.319,
    ("central5", "rtt_ms"): 0.415,
}


def paper_value(scenario: str, metric: str) -> Optional[float]:
    return PAPER_TABLE1.get((scenario, metric))
