"""Atomic farm tasks: the per-sample work items behind each figure.

Each function runs ONE independent simulation (one testbed build, one
flow or ping sequence) and returns a JSON-serialisable value, so it can
execute in a worker process and be cached on disk.  ``params`` travels
as the ``dataclasses.asdict`` form of :class:`TestbedParams` (or
``None`` for the calibrated defaults); the same parameter set drives
both the topology build and per-flow costs like ``udp_send_cost``, so
they cannot diverge.

The figure runners in :mod:`repro.analysis.runners` decompose into
lists of :class:`~repro.farm.spec.RunSpec` over these tasks plus pure
merge functions.
"""

from __future__ import annotations

from dataclasses import asdict, replace
from typing import Any, Dict, List, Optional

from repro.chaos import ChaosEngine, FaultSchedule, QuarantineController
from repro.farm.spec import register_runner
from repro.scenarios.testbed import TestbedParams, build_testbed
from repro.traffic.iperf import (
    DRAIN_TIME,
    find_max_udp_rate,
    run_ping,
    run_tcp_flow,
    run_udp_flow,
)
from repro.traffic.udp import UdpReceiver, UdpSender


def params_to_dict(params: Optional[TestbedParams]) -> Optional[Dict[str, Any]]:
    """Serialisable form of testbed parameters for spec kwargs."""
    return asdict(params) if params is not None else None


def params_from_dict(data: Optional[Dict[str, Any]]) -> TestbedParams:
    return TestbedParams(**data) if data else TestbedParams()


def build_scenario(
    variant: str,
    params: Any = None,
    seed: int = 0,
):
    """The one scenario-building path every farm task goes through.

    ``params`` may be ``None`` (calibrated defaults), the JSON dict form
    a :class:`~repro.farm.spec.RunSpec` carries (full *or* partial —
    unset fields keep their defaults), or an already-built
    :class:`TestbedParams`.  The variant is resolved through the
    scenario registry, so an unknown name fails with the registry's
    canonical message before any simulation work starts.
    """
    if not isinstance(params, TestbedParams):
        params = params_from_dict(params)
    return build_testbed(variant, params=params, seed=seed)


@register_runner("fig4.tcp")
def tcp_throughput_sample(
    variant: str,
    duration: float,
    reverse: bool,
    seed: int,
    params: Optional[Dict[str, Any]] = None,
) -> float:
    """One TCP bulk-transfer run; returns throughput in Mbit/s."""
    testbed = build_scenario(variant, params, seed)
    path = testbed.path(reverse=reverse)
    return run_tcp_flow(path, duration=duration).throughput_mbps


@register_runner("fig5.udp_max")
def udp_max_rate_search(
    variant: str,
    duration: float,
    iterations: int,
    seed: int,
    params: Optional[Dict[str, Any]] = None,
) -> Dict[str, float]:
    """The paper's 'adjust -b until a maximum is reached' search for
    one scenario; each probe uses a fresh testbed instance."""
    base = params_from_dict(params)
    rate, result = find_max_udp_rate(
        lambda: build_scenario(variant, base, seed).path(),
        duration=duration,
        iterations=iterations,
        send_cost=base.udp_send_cost,
    )
    return {
        "mbps": result.throughput_mbps,
        "loss_rate": result.loss_rate,
        "rate_bps": rate,
    }


@register_runner("fig6.udp_point")
def udp_offered_point(
    rate_mbps: float,
    duration: float,
    seed: int,
    variant: str = "central3",
    params: Optional[Dict[str, Any]] = None,
) -> List[float]:
    """One offered-rate point of the loss sweep:
    ``[offered_mbps, goodput_mbps, loss_rate]``."""
    base = params_from_dict(params)
    result = run_udp_flow(
        build_scenario(variant, base, seed).path(),
        rate_bps=rate_mbps * 1e6,
        duration=duration,
        send_cost=base.udp_send_cost,
    )
    return [rate_mbps, result.throughput_mbps, result.loss_rate]


@register_runner("fig7.rtt")
def rtt_sample(
    variant: str,
    count: int,
    seed: int,
    params: Optional[Dict[str, Any]] = None,
) -> float:
    """One sequence of ``count`` echo cycles; returns average RTT (ms)."""
    testbed = build_scenario(variant, params, seed)
    return run_ping(testbed.path(), count=count, interval=1e-3).avg_rtt_ms


def chaos_aliases(testbed) -> Dict[str, str]:
    """Schedule-target aliases for a combiner testbed: ``r{i}`` is branch
    i's router, ``link_a{i}``/``link_b{i}`` its ingress/egress link."""
    chain = testbed.chain
    aliases: Dict[str, str] = {}
    for i, router in enumerate(chain.routers):
        aliases[f"r{i}"] = router.name
        aliases[f"link_a{i}"] = f"{chain.endpoint_a.name}-{router.name}"
        aliases[f"link_b{i}"] = f"{router.name}-{chain.endpoint_b.name}"
    return aliases


@register_runner("chaos.run")
def chaos_run(
    schedule: Dict[str, Any],
    seed: int,
    variant: str = "central3",
    duration: float = 0.05,
    rate_mbps: float = 20.0,
    payload_size: int = 1470,
    miss_threshold: int = 8,
    probation_clean_target: int = 12,
    buffer_timeout: float = 2e-3,
    params: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One UDP flow through a combiner testbed under a fault schedule.

    Returns the full survivability record: flow loss, the injected fault
    timeline, quarantine/readmit transitions, and the post-quarantine
    delivery gap count (the acceptance metric: a healthy self-healing
    combiner shows ``post_quarantine_gaps == 0``).
    """
    base = replace(params_from_dict(params), compare_buffer_timeout=buffer_timeout)
    testbed = build_scenario(variant, base, seed)
    net = testbed.network
    core = testbed.compare_core
    # Availability knobs are read dynamically by the compare, so tuning
    # them post-build is safe (buffer_timeout is not: set above).
    core.config.miss_threshold = miss_threshold
    core.config.probation_clean_target = probation_clean_target

    controller = QuarantineController(core, net.trace)
    engine = ChaosEngine(
        FaultSchedule.from_dict(schedule), net, aliases=chaos_aliases(testbed)
    )
    engine.arm()

    warmup = 1e-3
    dport = 5001
    receiver = UdpReceiver(testbed.h2, dport)
    sender = UdpSender(
        testbed.h1,
        dst_mac=testbed.h2.mac,
        dst_ip=testbed.h2.ip,
        dport=dport,
        rate_bps=rate_mbps * 1e6,
        payload_size=payload_size,
        send_cost=base.udp_send_cost,
    )
    sender.start(duration, delay=warmup)
    net.run(until=warmup + duration + DRAIN_TIME)
    flow = receiver.result(sender, duration)
    receiver.close()
    controller.detach()

    # Post-quarantine gap analysis: the sender paces deterministically
    # (seq i departs at warmup + i * interval), so the datagrams offered
    # after the first quarantine are exactly the seqs >= the cutoff.
    quarantine_times = [
        t["time"] for t in controller.transitions if t["event"] == "quarantine"
    ]
    post_quarantine_gaps = None
    if quarantine_times:
        first_q = min(quarantine_times)
        seen = receiver.received_sequences()
        interval = sender.interval
        post = [
            s for s in range(sender.sent) if warmup + s * interval >= first_q
        ]
        post_quarantine_gaps = sum(1 for s in post if s not in seen)

    alarm_counts: Dict[str, int] = {}
    for alarm in testbed.chain.alarms.alarms:
        alarm_counts[alarm.kind] = alarm_counts.get(alarm.kind, 0) + 1

    return {
        "variant": variant,
        "schedule": engine.schedule.name,
        "seed": seed,
        "sent": flow.sent,
        "received": flow.received_unique,
        "duplicates": flow.duplicates,
        "lost": flow.lost,
        "loss_rate": flow.loss_rate,
        "injections": engine.injections,
        "transitions": controller.transitions,
        "quarantined": sorted(
            {t["branch"] for t in controller.transitions if t["event"] == "quarantine"}
        ),
        "readmitted": sorted(
            {t["branch"] for t in controller.transitions if t["event"] == "readmit"}
        ),
        "post_quarantine_gaps": post_quarantine_gaps,
        "alarms": alarm_counts,
        "compare": core.stats.as_dict(),
    }


@register_runner("fig8.jitter")
def jitter_sample(
    variant: str,
    payload_size: int,
    rate_mbps: float,
    duration: float,
    seed: int,
    params: Optional[Dict[str, Any]] = None,
) -> float:
    """One fixed-bitrate UDP run; returns RFC 3550 jitter (ms)."""
    result = run_udp_flow(
        build_scenario(variant, params, seed).path(),
        rate_bps=rate_mbps * 1e6,
        duration=duration,
        payload_size=payload_size,
    )
    return result.jitter_ms
