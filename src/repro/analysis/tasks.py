"""Atomic farm tasks: the per-sample work items behind each figure.

Each function runs ONE independent simulation (one testbed build, one
flow or ping sequence) and returns a JSON-serialisable value, so it can
execute in a worker process and be cached on disk.  ``params`` travels
as the ``dataclasses.asdict`` form of :class:`TestbedParams` (or
``None`` for the calibrated defaults); the same parameter set drives
both the topology build and per-flow costs like ``udp_send_cost``, so
they cannot diverge.

The figure runners in :mod:`repro.analysis.runners` decompose into
lists of :class:`~repro.farm.spec.RunSpec` over these tasks plus pure
merge functions.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Dict, List, Optional

from repro.farm.spec import register_runner
from repro.scenarios.testbed import TestbedParams, build_testbed
from repro.traffic.iperf import (
    find_max_udp_rate,
    run_ping,
    run_tcp_flow,
    run_udp_flow,
)


def params_to_dict(params: Optional[TestbedParams]) -> Optional[Dict[str, Any]]:
    """Serialisable form of testbed parameters for spec kwargs."""
    return asdict(params) if params is not None else None


def params_from_dict(data: Optional[Dict[str, Any]]) -> TestbedParams:
    return TestbedParams(**data) if data else TestbedParams()


@register_runner("fig4.tcp")
def tcp_throughput_sample(
    variant: str,
    duration: float,
    reverse: bool,
    seed: int,
    params: Optional[Dict[str, Any]] = None,
) -> float:
    """One TCP bulk-transfer run; returns throughput in Mbit/s."""
    testbed = build_testbed(variant, params=params_from_dict(params), seed=seed)
    path = testbed.path(reverse=reverse)
    return run_tcp_flow(path, duration=duration).throughput_mbps


@register_runner("fig5.udp_max")
def udp_max_rate_search(
    variant: str,
    duration: float,
    iterations: int,
    seed: int,
    params: Optional[Dict[str, Any]] = None,
) -> Dict[str, float]:
    """The paper's 'adjust -b until a maximum is reached' search for
    one scenario; each probe uses a fresh testbed instance."""
    base = params_from_dict(params)
    rate, result = find_max_udp_rate(
        lambda: build_testbed(variant, params=base, seed=seed).path(),
        duration=duration,
        iterations=iterations,
        send_cost=base.udp_send_cost,
    )
    return {
        "mbps": result.throughput_mbps,
        "loss_rate": result.loss_rate,
        "rate_bps": rate,
    }


@register_runner("fig6.udp_point")
def udp_offered_point(
    rate_mbps: float,
    duration: float,
    seed: int,
    variant: str = "central3",
    params: Optional[Dict[str, Any]] = None,
) -> List[float]:
    """One offered-rate point of the loss sweep:
    ``[offered_mbps, goodput_mbps, loss_rate]``."""
    base = params_from_dict(params)
    result = run_udp_flow(
        build_testbed(variant, params=base, seed=seed).path(),
        rate_bps=rate_mbps * 1e6,
        duration=duration,
        send_cost=base.udp_send_cost,
    )
    return [rate_mbps, result.throughput_mbps, result.loss_rate]


@register_runner("fig7.rtt")
def rtt_sample(
    variant: str,
    count: int,
    seed: int,
    params: Optional[Dict[str, Any]] = None,
) -> float:
    """One sequence of ``count`` echo cycles; returns average RTT (ms)."""
    testbed = build_testbed(variant, params=params_from_dict(params), seed=seed)
    return run_ping(testbed.path(), count=count, interval=1e-3).avg_rtt_ms


@register_runner("fig8.jitter")
def jitter_sample(
    variant: str,
    payload_size: int,
    rate_mbps: float,
    duration: float,
    seed: int,
    params: Optional[Dict[str, Any]] = None,
) -> float:
    """One fixed-bitrate UDP run; returns RFC 3550 jitter (ms)."""
    result = run_udp_flow(
        build_testbed(variant, params=params_from_dict(params), seed=seed).path(),
        rate_bps=rate_mbps * 1e6,
        duration=duration,
        payload_size=payload_size,
    )
    return result.jitter_ms
