"""Atomic farm tasks: the per-sample work items behind each figure.

Each function runs ONE independent simulation (one testbed build, one
flow or ping sequence) and returns a JSON-serialisable value, so it can
execute in a worker process and be cached on disk.  ``params`` travels
as the ``dataclasses.asdict`` form of :class:`TestbedParams` (or
``None`` for the calibrated defaults); the same parameter set drives
both the topology build and per-flow costs like ``udp_send_cost``, so
they cannot diverge.

The figure runners in :mod:`repro.analysis.runners` decompose into
lists of :class:`~repro.farm.spec.RunSpec` over these tasks plus pure
merge functions.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, replace
from typing import Any, Dict, List, Optional

from repro.chaos import (
    AdversaryStrategy,
    ChaosEngine,
    ControllerCompromise,
    ControllerCrash,
    FaultSchedule,
    QuarantineController,
)
from repro.core.alarms import ALARM_DOS_SUSPECTED, ALARM_ROUTER_UNAVAILABLE
from repro.farm.spec import register_runner
from repro.scenarios.ctrlplane import CtrlParams, build_ctrl_testbed
from repro.scenarios.testbed import TestbedParams, build_testbed
from repro.traffic.iperf import (
    DRAIN_TIME,
    find_max_udp_rate,
    run_ping,
    run_tcp_flow,
    run_udp_flow,
)
from repro.traffic.udp import UdpReceiver, UdpSender


def params_to_dict(params: Optional[TestbedParams]) -> Optional[Dict[str, Any]]:
    """Serialisable form of testbed parameters for spec kwargs."""
    return asdict(params) if params is not None else None


def params_from_dict(data: Optional[Dict[str, Any]]) -> TestbedParams:
    return TestbedParams(**data) if data else TestbedParams()


def build_scenario(
    variant: str,
    params: Any = None,
    seed: int = 0,
):
    """The one scenario-building path every farm task goes through.

    ``params`` may be ``None`` (calibrated defaults), the JSON dict form
    a :class:`~repro.farm.spec.RunSpec` carries (full *or* partial —
    unset fields keep their defaults), or an already-built
    :class:`TestbedParams`.  The variant is resolved through the
    scenario registry, so an unknown name fails with the registry's
    canonical message before any simulation work starts.
    """
    if not isinstance(params, TestbedParams):
        params = params_from_dict(params)
    return build_testbed(variant, params=params, seed=seed)


@register_runner("fig4.tcp")
def tcp_throughput_sample(
    variant: str,
    duration: float,
    reverse: bool,
    seed: int,
    params: Optional[Dict[str, Any]] = None,
) -> float:
    """One TCP bulk-transfer run; returns throughput in Mbit/s."""
    testbed = build_scenario(variant, params, seed)
    path = testbed.path(reverse=reverse)
    return run_tcp_flow(path, duration=duration).throughput_mbps


@register_runner("fig5.udp_max")
def udp_max_rate_search(
    variant: str,
    duration: float,
    iterations: int,
    seed: int,
    params: Optional[Dict[str, Any]] = None,
) -> Dict[str, float]:
    """The paper's 'adjust -b until a maximum is reached' search for
    one scenario; each probe uses a fresh testbed instance."""
    base = params_from_dict(params)
    rate, result = find_max_udp_rate(
        lambda: build_scenario(variant, base, seed).path(),
        duration=duration,
        iterations=iterations,
        send_cost=base.udp_send_cost,
    )
    return {
        "mbps": result.throughput_mbps,
        "loss_rate": result.loss_rate,
        "rate_bps": rate,
    }


@register_runner("fig6.udp_point")
def udp_offered_point(
    rate_mbps: float,
    duration: float,
    seed: int,
    variant: str = "central3",
    params: Optional[Dict[str, Any]] = None,
) -> List[float]:
    """One offered-rate point of the loss sweep:
    ``[offered_mbps, goodput_mbps, loss_rate]``."""
    base = params_from_dict(params)
    result = run_udp_flow(
        build_scenario(variant, base, seed).path(),
        rate_bps=rate_mbps * 1e6,
        duration=duration,
        send_cost=base.udp_send_cost,
    )
    return [rate_mbps, result.throughput_mbps, result.loss_rate]


@register_runner("fig7.rtt")
def rtt_sample(
    variant: str,
    count: int,
    seed: int,
    params: Optional[Dict[str, Any]] = None,
) -> float:
    """One sequence of ``count`` echo cycles; returns average RTT (ms)."""
    testbed = build_scenario(variant, params, seed)
    return run_ping(testbed.path(), count=count, interval=1e-3).avg_rtt_ms


def chaos_aliases(testbed) -> Dict[str, str]:
    """Schedule-target aliases for a combiner testbed: ``r{i}`` is branch
    i's router, ``link_a{i}``/``link_b{i}`` its ingress/egress link."""
    chain = testbed.chain
    aliases: Dict[str, str] = {}
    for i, router in enumerate(chain.routers):
        aliases[f"r{i}"] = router.name
        aliases[f"link_a{i}"] = f"{chain.endpoint_a.name}-{router.name}"
        aliases[f"link_b{i}"] = f"{router.name}-{chain.endpoint_b.name}"
    return aliases


@register_runner("chaos.run")
def chaos_run(
    schedule: Dict[str, Any],
    seed: int,
    variant: str = "central3",
    duration: float = 0.05,
    rate_mbps: float = 20.0,
    payload_size: int = 1470,
    miss_threshold: int = 8,
    probation_clean_target: int = 12,
    buffer_timeout: float = 2e-3,
    params: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One UDP flow through a combiner testbed under a fault schedule.

    Returns the full survivability record: flow loss, the injected fault
    timeline, quarantine/readmit transitions, and the post-quarantine
    delivery gap count (the acceptance metric: a healthy self-healing
    combiner shows ``post_quarantine_gaps == 0``).
    """
    base = replace(params_from_dict(params), compare_buffer_timeout=buffer_timeout)
    testbed = build_scenario(variant, base, seed)
    net = testbed.network
    core = testbed.compare_core
    # Availability knobs are read dynamically by the compare, so tuning
    # them post-build is safe (buffer_timeout is not: set above).
    core.config.miss_threshold = miss_threshold
    core.config.probation_clean_target = probation_clean_target

    controller = QuarantineController(core, net.trace)
    engine = ChaosEngine(
        FaultSchedule.from_dict(schedule), net, aliases=chaos_aliases(testbed)
    )
    engine.arm()

    warmup = 1e-3
    dport = 5001
    receiver = UdpReceiver(testbed.h2, dport)
    sender = UdpSender(
        testbed.h1,
        dst_mac=testbed.h2.mac,
        dst_ip=testbed.h2.ip,
        dport=dport,
        rate_bps=rate_mbps * 1e6,
        payload_size=payload_size,
        send_cost=base.udp_send_cost,
    )
    sender.start(duration, delay=warmup)
    net.run(until=warmup + duration + DRAIN_TIME)
    flow = receiver.result(sender, duration)
    receiver.close()
    controller.detach()

    # Post-quarantine gap analysis: the sender paces deterministically
    # (seq i departs at warmup + i * interval), so the datagrams offered
    # after the first quarantine are exactly the seqs >= the cutoff.
    quarantine_times = [
        t["time"] for t in controller.transitions if t["event"] == "quarantine"
    ]
    post_quarantine_gaps = None
    if quarantine_times:
        first_q = min(quarantine_times)
        seen = receiver.received_sequences()
        interval = sender.interval
        post = [
            s for s in range(sender.sent) if warmup + s * interval >= first_q
        ]
        post_quarantine_gaps = sum(1 for s in post if s not in seen)

    alarm_counts: Dict[str, int] = {}
    for alarm in testbed.chain.alarms.alarms:
        alarm_counts[alarm.kind] = alarm_counts.get(alarm.kind, 0) + 1

    return {
        "variant": variant,
        "schedule": engine.schedule.name,
        "seed": seed,
        "sent": flow.sent,
        "received": flow.received_unique,
        "duplicates": flow.duplicates,
        "lost": flow.lost,
        "loss_rate": flow.loss_rate,
        "injections": engine.injections,
        "transitions": controller.transitions,
        "quarantined": sorted(
            {t["branch"] for t in controller.transitions if t["event"] == "quarantine"}
        ),
        "readmitted": sorted(
            {t["branch"] for t in controller.transitions if t["event"] == "readmit"}
        ),
        "post_quarantine_gaps": post_quarantine_gaps,
        "alarms": alarm_counts,
        "compare": core.stats.as_dict(),
    }


#: the adversary axis of the advbench sweep.  ``sampled_p<digits>``
#: encodes the corruption probability (p001 -> 0.001, p1 -> 0.1);
#: ``colluding_minority`` compromises quorum-1 branches with identical
#: wrong wire images, ``colluding_quorum`` compromises a full quorum —
#: the negative-control row where the voter *must* admit damage.
ADVBENCH_ADVERSARIES = (
    "sampled_p001",
    "sampled_p01",
    "sampled_p1",
    "probation_evader",
    "sweep_timed",
    "path_inconsistency",
    "colluding_minority",
    "colluding_quorum",
)

#: compare timing/threshold profiles swept by advbench.  Only *when*
#: detection triggers varies — the vote policy stays bit-exact in every
#: profile, so sub-quorum masked damage must be 0 in all rows.
#: ``block_duration`` is kept short so a quarantined-but-quiet branch's
#: clean copies reach the compare and probation can actually progress.
COMPARE_PROFILES: Dict[str, Dict[str, Any]] = {
    "balanced": {
        "buffer_timeout": 2e-3,
        "miss_threshold": 8,
        "craft_threshold": 48,
        "probation_clean_target": 12,
        "block_duration": 2e-3,
    },
    "vigilant": {
        "buffer_timeout": 1e-3,
        "miss_threshold": 4,
        "craft_threshold": 16,
        "probation_clean_target": 24,
        "block_duration": 1e-3,
    },
}


def advbench_schedule(
    adversary: str,
    k: int,
    activate_at: float,
    until: Optional[float] = None,
) -> FaultSchedule:
    """The fault schedule behind one advbench adversary row.

    Single-branch strategies target ``r1``; collusion rows target
    ``r0..r{m-1}`` with m = quorum-1 (minority) or m = quorum (the
    negative control).
    """
    quorum = k // 2 + 1
    if adversary.startswith("sampled_p"):
        rate = float("0." + adversary[len("sampled_p"):])
        spec = [("r1", {"strategy": "sampled_corruption", "rate": rate})]
    elif adversary == "probation_evader":
        spec = [("r1", {"strategy": "probation_evader"})]
    elif adversary == "sweep_timed":
        spec = [("r1", {"strategy": "sweep_timed"})]
    elif adversary == "path_inconsistency":
        spec = [("r1", {"strategy": "path_inconsistency", "pace": 3})]
    elif adversary == "colluding_minority":
        spec = [(f"r{i}", {"strategy": "colluding_minority"}) for i in range(quorum - 1)]
    elif adversary == "colluding_quorum":
        spec = [(f"r{i}", {"strategy": "colluding_minority"}) for i in range(quorum)]
    else:
        raise ValueError(
            f"unknown advbench adversary {adversary!r} "
            f"(known: {list(ADVBENCH_ADVERSARIES)})"
        )
    events = [
        AdversaryStrategy(activate_at, target, until=until, **kwargs)
        for target, kwargs in spec
    ]
    return FaultSchedule(events, name=adversary)


@register_runner("adv.run")
def adversary_run(
    seed: int,
    variant: str = "central3",
    adversary: str = "sampled_p1",
    profile: str = "balanced",
    duration: float = 0.03,
    rate_mbps: float = 20.0,
    payload_size: int = 512,
    activate_at: float = 0.005,
    params: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One UDP flow through a combiner testbed under one adversary strategy.

    The detection-latency record behind the advbench table:
    time-to-first-alarm, time-to-quarantine, packets leaked before the
    first quarantine, masked damage (corrupted datagrams the voter
    released — the canonical corruption lands in the UDP sequence
    header, so any tampered datagram that reaches the receiver decodes
    to an alien sequence number far above anything actually sent), and
    the false-quarantine count over honest branches.
    """
    prof = COMPARE_PROFILES.get(profile)
    if prof is None:
        raise ValueError(
            f"unknown compare profile {profile!r} (known: {sorted(COMPARE_PROFILES)})"
        )
    base = replace(
        params_from_dict(params), compare_buffer_timeout=prof["buffer_timeout"]
    )
    testbed = build_scenario(variant, base, seed)
    net = testbed.network
    core = testbed.compare_core
    if core is None:
        raise ValueError(f"variant {variant!r} has no compare element")
    # Threshold knobs are read dynamically by the compare, so tuning
    # them post-build is safe (buffer_timeout is not: set above).
    core.config.miss_threshold = prof["miss_threshold"]
    core.config.craft_threshold = prof["craft_threshold"]
    core.config.probation_clean_target = prof["probation_clean_target"]
    core.config.block_duration = prof["block_duration"]
    k = len(testbed.chain.routers)

    warmup = 1e-3
    until = warmup + duration
    # A lying branch that keeps voting never goes *missing*; it surfaces
    # through single-source expiries escalating to the crafted-flood DoS
    # alarm, so the quarantine loop listens for both alarm kinds.
    controller = QuarantineController(
        core,
        net.trace,
        trigger_kinds=(ALARM_ROUTER_UNAVAILABLE, ALARM_DOS_SUSPECTED),
    )
    # An activation scheduled past the flow's end (the honest control)
    # drops the deactivation event: the strategy never fires anyway.
    engine = ChaosEngine(
        advbench_schedule(
            adversary, k, activate_at,
            until=until if activate_at < until else None,
        ),
        net,
        aliases=chaos_aliases(testbed),
        compare_core=core,
    )
    engine.arm()

    dport = 5001
    receiver = UdpReceiver(testbed.h2, dport)
    sender = UdpSender(
        testbed.h1,
        dst_mac=testbed.h2.mac,
        dst_ip=testbed.h2.ip,
        dport=dport,
        rate_bps=rate_mbps * 1e6,
        payload_size=payload_size,
        send_cost=base.udp_send_cost,
    )
    sender.start(duration, delay=warmup)
    net.run(until=warmup + duration + DRAIN_TIME)
    flow = receiver.result(sender, duration)
    receiver.close()
    controller.detach()

    strategies = engine.strategy_behaviors.values()
    adversary_branches = sorted(s.branch for s in strategies)
    tampered = sum(s.packets_tampered for s in strategies)
    active_seconds = sum(s.active_seconds for s in strategies)

    alarms = testbed.chain.alarms.alarms
    alarm_counts: Dict[str, int] = {}
    for alarm in alarms:
        alarm_counts[alarm.kind] = alarm_counts.get(alarm.kind, 0) + 1
    attack_alarms = [a for a in alarms if a.time >= activate_at]
    time_to_first_alarm = None
    first_alarm_kind = None
    if attack_alarms:
        first = min(attack_alarms, key=lambda a: a.time)
        time_to_first_alarm = first.time - activate_at
        first_alarm_kind = first.kind

    transitions = controller.transitions
    adversary_q_times = [
        t["time"]
        for t in transitions
        if t["event"] == "quarantine" and t["branch"] in adversary_branches
    ]
    detection_latency = (
        min(adversary_q_times) - activate_at if adversary_q_times else None
    )
    honest_branches = [b for b in range(k) if b not in adversary_branches]
    false_quarantines = sum(
        1
        for t in transitions
        if t["event"] == "quarantine" and t["branch"] in honest_branches
    )
    falsely_quarantined = sorted(
        {
            t["branch"]
            for t in transitions
            if t["event"] == "quarantine" and t["branch"] in honest_branches
        }
    )
    false_quarantine_rate = (
        len(falsely_quarantined) / len(honest_branches) if honest_branches else 0.0
    )

    # Damage accounting off the receiver's sequence log.  Intact seqs are
    # < sender.sent; a released corrupt datagram decodes as an alien seq.
    seen = receiver.received_sequences()
    masked_damage = sum(1 for s in seen if s >= flow.sent)
    intact = {s for s in seen if s < flow.sent}
    # Leaked = attack-window datagrams (sent deterministically at
    # warmup + s * interval) not delivered intact before the first
    # adversary-branch quarantine; with an honest quorum every one is
    # outvoted and leaked stays 0.
    interval = sender.interval
    window_end = min(adversary_q_times) if adversary_q_times else until
    leaked = sum(
        1
        for s in range(flow.sent)
        if activate_at <= warmup + s * interval < window_end and s not in intact
    )

    return {
        "variant": variant,
        "k": k,
        "quorum": core.config.effective_quorum(),
        "adversary": adversary,
        "profile": profile,
        "seed": seed,
        "adversary_branches": adversary_branches,
        "activate_at": activate_at,
        "sent": flow.sent,
        "received": flow.received_unique,
        "duplicates": flow.duplicates,
        "lost": flow.lost,
        "loss_rate": flow.loss_rate,
        "tampered": tampered,
        "adversary_active_seconds": active_seconds,
        "time_to_first_alarm": time_to_first_alarm,
        "first_alarm_kind": first_alarm_kind,
        "detection_latency": detection_latency,
        "packets_leaked_before_quarantine": leaked,
        "masked_damage": masked_damage,
        "false_quarantines": false_quarantines,
        "falsely_quarantined": falsely_quarantined,
        "false_quarantine_rate": false_quarantine_rate,
        "quarantined": sorted(
            {t["branch"] for t in transitions if t["event"] == "quarantine"}
        ),
        "readmitted": sorted(
            {t["branch"] for t in transitions if t["event"] == "readmit"}
        ),
        "transitions": transitions,
        "injections": engine.injections,
        "alarms": alarm_counts,
        "compare": core.stats.as_dict(),
    }


#: the adversary axis of the ctrlbft sweep.  The fault always targets
#: replica ``c1`` when it exists (c0 at ctrl_k=1, giving the
#: *unprotected* baseline: a lone lying controller installs its lies).
CTRL_ADVERSARIES = ("none", "crash", "lying")


def _ctrl_adversary_schedule(adversary: str, ctrl_k: int) -> Optional[FaultSchedule]:
    target = f"c{min(1, ctrl_k - 1)}"
    if adversary == "none":
        return None
    if adversary == "crash":
        return FaultSchedule(
            [ControllerCrash(0.012, target, restart_at=0.030)],
            name="ctrl_crash",
        )
    if adversary == "lying":
        return FaultSchedule(
            [ControllerCompromise(0.010, target, strategy="blackhole")],
            name="ctrl_lying",
        )
    raise ValueError(
        f"unknown control-plane adversary {adversary!r} "
        f"(known: {list(CTRL_ADVERSARIES)})"
    )


@register_runner("ctrl.run")
def ctrl_run(
    seed: int,
    variant: str = "central3",
    ctrl_k: int = 3,
    adversary: str = "none",
    duration: float = 0.04,
    rate_mbps: float = 10.0,
    payload_size: int = 512,
    vote_timeout: float = 2e-3,
    miss_threshold: int = 4,
    probation_clean_target: int = 6,
    flow_hard_timeout: float = 5e-3,
    params: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One UDP flow under a replicated control plane and one adversary.

    Returns the BFT record: flow loss, a fingerprint of the exact
    data-plane delivery (bit-identity across ctrl_k is the acceptance
    check), vote/blocked counters, the quarantine timeline and the
    detection latency from fault injection to quarantine.
    """
    ctrl = CtrlParams(
        ctrl_k=ctrl_k,
        vote_timeout=vote_timeout,
        miss_threshold=miss_threshold,
        probation_clean_target=probation_clean_target,
        flow_hard_timeout=flow_hard_timeout,
    )
    tb = build_ctrl_testbed(variant, ctrl=ctrl, params=params_from_dict(params), seed=seed)
    net = tb.network
    base = tb.testbed.params

    schedule = _ctrl_adversary_schedule(adversary, ctrl_k)
    engine = None
    if schedule is not None:
        engine = ChaosEngine(
            schedule,
            net,
            aliases=chaos_aliases(tb.testbed),
            control_plane=tb.control_plane,
        )
        engine.arm()

    # One reverse datagram teaches every replica h2's port before the
    # forward flow starts, so forward decisions are FlowMod installs
    # (votable, and worth lying about) instead of endless floods.
    primer = UdpSender(
        tb.h2,
        dst_mac=tb.h1.mac,
        dst_ip=tb.h1.ip,
        dport=5002,
        rate_bps=rate_mbps * 1e6,
        payload_size=64,
        send_cost=base.udp_send_cost,
    )
    primer.start(1e-6, delay=2e-4)

    warmup = 1e-3
    dport = 5001
    receiver = UdpReceiver(tb.h2, dport)
    sender = UdpSender(
        tb.h1,
        dst_mac=tb.h2.mac,
        dst_ip=tb.h2.ip,
        dport=dport,
        rate_bps=rate_mbps * 1e6,
        payload_size=payload_size,
        send_cost=base.udp_send_cost,
    )
    sender.start(duration, delay=warmup)
    net.run(until=warmup + duration + DRAIN_TIME)
    flow = receiver.result(sender, duration)
    sequences = sorted(receiver.received_sequences())
    receiver.close()
    if tb.quarantine is not None:
        tb.quarantine.detach()
    tb.control_plane.flush()

    # The bit-identity artefact: a digest of exactly which datagrams the
    # receiver saw.  Equal fingerprints == identical data-plane outcome.
    fingerprint = hashlib.sha256(
        ",".join(str(s) for s in sequences).encode("ascii")
    ).hexdigest()[:16]

    transitions = tb.quarantine.transitions if tb.quarantine is not None else []
    quarantine_times = [t["time"] for t in transitions if t["event"] == "quarantine"]
    injections = engine.injections if engine is not None else []
    detection_latency = None
    if quarantine_times and injections:
        detection_latency = min(quarantine_times) - min(i["time"] for i in injections)

    handles = tb.control_plane.replica_stats()
    malicious_emitted = sum(h["malicious_emitted"] for h in handles)
    if ctrl_k >= 2:
        # The voter's accounting of lies that assembled a majority.
        malicious_installed = tb.compare.stats.malicious_released
    else:
        # Pass-through: every lie the lone replica emitted was installed.
        malicious_installed = malicious_emitted

    alarm_counts: Dict[str, int] = {}
    for alarm in tb.testbed.chain.alarms.alarms:
        alarm_counts[alarm.kind] = alarm_counts.get(alarm.kind, 0) + 1

    return {
        "variant": variant,
        "ctrl_k": ctrl_k,
        "adversary": adversary,
        "seed": seed,
        "sent": flow.sent,
        "received": flow.received_unique,
        "duplicates": flow.duplicates,
        "lost": flow.lost,
        "loss_rate": flow.loss_rate,
        "data_fingerprint": fingerprint,
        "malicious_emitted": malicious_emitted,
        "malicious_installed": malicious_installed,
        "detection_latency": detection_latency,
        "ctrl_quarantined": sorted(
            {t["branch"] for t in transitions if t["event"] == "quarantine"}
        ),
        "ctrl_readmitted": sorted(
            {t["branch"] for t in transitions if t["event"] == "readmit"}
        ),
        "transitions": transitions,
        "injections": injections,
        "alarms": alarm_counts,
        "ctrl": tb.compare.stats.as_dict(),
        "replicas": handles,
    }


@register_runner("fig8.jitter")
def jitter_sample(
    variant: str,
    payload_size: int,
    rate_mbps: float,
    duration: float,
    seed: int,
    params: Optional[Dict[str, Any]] = None,
) -> float:
    """One fixed-bitrate UDP run; returns RFC 3550 jitter (ms)."""
    result = run_udp_flow(
        build_scenario(variant, params, seed).path(),
        rate_bps=rate_mbps * 1e6,
        duration=duration,
        payload_size=payload_size,
    )
    return result.jitter_ms
