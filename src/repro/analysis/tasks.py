"""Atomic farm tasks: the per-sample work items behind each figure.

Each function runs ONE independent simulation (one testbed build, one
flow or ping sequence) and returns a JSON-serialisable value, so it can
execute in a worker process and be cached on disk.  ``params`` travels
as the ``dataclasses.asdict`` form of :class:`TestbedParams` (or
``None`` for the calibrated defaults); the same parameter set drives
both the topology build and per-flow costs like ``udp_send_cost``, so
they cannot diverge.

The figure runners in :mod:`repro.analysis.runners` decompose into
lists of :class:`~repro.farm.spec.RunSpec` over these tasks plus pure
merge functions.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, replace
from typing import Any, Dict, List, Optional

from repro.chaos import (
    ChaosEngine,
    ControllerCompromise,
    ControllerCrash,
    FaultSchedule,
    QuarantineController,
)
from repro.farm.spec import register_runner
from repro.scenarios.ctrlplane import CtrlParams, build_ctrl_testbed
from repro.scenarios.testbed import TestbedParams, build_testbed
from repro.traffic.iperf import (
    DRAIN_TIME,
    find_max_udp_rate,
    run_ping,
    run_tcp_flow,
    run_udp_flow,
)
from repro.traffic.udp import UdpReceiver, UdpSender


def params_to_dict(params: Optional[TestbedParams]) -> Optional[Dict[str, Any]]:
    """Serialisable form of testbed parameters for spec kwargs."""
    return asdict(params) if params is not None else None


def params_from_dict(data: Optional[Dict[str, Any]]) -> TestbedParams:
    return TestbedParams(**data) if data else TestbedParams()


def build_scenario(
    variant: str,
    params: Any = None,
    seed: int = 0,
):
    """The one scenario-building path every farm task goes through.

    ``params`` may be ``None`` (calibrated defaults), the JSON dict form
    a :class:`~repro.farm.spec.RunSpec` carries (full *or* partial —
    unset fields keep their defaults), or an already-built
    :class:`TestbedParams`.  The variant is resolved through the
    scenario registry, so an unknown name fails with the registry's
    canonical message before any simulation work starts.
    """
    if not isinstance(params, TestbedParams):
        params = params_from_dict(params)
    return build_testbed(variant, params=params, seed=seed)


@register_runner("fig4.tcp")
def tcp_throughput_sample(
    variant: str,
    duration: float,
    reverse: bool,
    seed: int,
    params: Optional[Dict[str, Any]] = None,
) -> float:
    """One TCP bulk-transfer run; returns throughput in Mbit/s."""
    testbed = build_scenario(variant, params, seed)
    path = testbed.path(reverse=reverse)
    return run_tcp_flow(path, duration=duration).throughput_mbps


@register_runner("fig5.udp_max")
def udp_max_rate_search(
    variant: str,
    duration: float,
    iterations: int,
    seed: int,
    params: Optional[Dict[str, Any]] = None,
) -> Dict[str, float]:
    """The paper's 'adjust -b until a maximum is reached' search for
    one scenario; each probe uses a fresh testbed instance."""
    base = params_from_dict(params)
    rate, result = find_max_udp_rate(
        lambda: build_scenario(variant, base, seed).path(),
        duration=duration,
        iterations=iterations,
        send_cost=base.udp_send_cost,
    )
    return {
        "mbps": result.throughput_mbps,
        "loss_rate": result.loss_rate,
        "rate_bps": rate,
    }


@register_runner("fig6.udp_point")
def udp_offered_point(
    rate_mbps: float,
    duration: float,
    seed: int,
    variant: str = "central3",
    params: Optional[Dict[str, Any]] = None,
) -> List[float]:
    """One offered-rate point of the loss sweep:
    ``[offered_mbps, goodput_mbps, loss_rate]``."""
    base = params_from_dict(params)
    result = run_udp_flow(
        build_scenario(variant, base, seed).path(),
        rate_bps=rate_mbps * 1e6,
        duration=duration,
        send_cost=base.udp_send_cost,
    )
    return [rate_mbps, result.throughput_mbps, result.loss_rate]


@register_runner("fig7.rtt")
def rtt_sample(
    variant: str,
    count: int,
    seed: int,
    params: Optional[Dict[str, Any]] = None,
) -> float:
    """One sequence of ``count`` echo cycles; returns average RTT (ms)."""
    testbed = build_scenario(variant, params, seed)
    return run_ping(testbed.path(), count=count, interval=1e-3).avg_rtt_ms


def chaos_aliases(testbed) -> Dict[str, str]:
    """Schedule-target aliases for a combiner testbed: ``r{i}`` is branch
    i's router, ``link_a{i}``/``link_b{i}`` its ingress/egress link."""
    chain = testbed.chain
    aliases: Dict[str, str] = {}
    for i, router in enumerate(chain.routers):
        aliases[f"r{i}"] = router.name
        aliases[f"link_a{i}"] = f"{chain.endpoint_a.name}-{router.name}"
        aliases[f"link_b{i}"] = f"{router.name}-{chain.endpoint_b.name}"
    return aliases


@register_runner("chaos.run")
def chaos_run(
    schedule: Dict[str, Any],
    seed: int,
    variant: str = "central3",
    duration: float = 0.05,
    rate_mbps: float = 20.0,
    payload_size: int = 1470,
    miss_threshold: int = 8,
    probation_clean_target: int = 12,
    buffer_timeout: float = 2e-3,
    params: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One UDP flow through a combiner testbed under a fault schedule.

    Returns the full survivability record: flow loss, the injected fault
    timeline, quarantine/readmit transitions, and the post-quarantine
    delivery gap count (the acceptance metric: a healthy self-healing
    combiner shows ``post_quarantine_gaps == 0``).
    """
    base = replace(params_from_dict(params), compare_buffer_timeout=buffer_timeout)
    testbed = build_scenario(variant, base, seed)
    net = testbed.network
    core = testbed.compare_core
    # Availability knobs are read dynamically by the compare, so tuning
    # them post-build is safe (buffer_timeout is not: set above).
    core.config.miss_threshold = miss_threshold
    core.config.probation_clean_target = probation_clean_target

    controller = QuarantineController(core, net.trace)
    engine = ChaosEngine(
        FaultSchedule.from_dict(schedule), net, aliases=chaos_aliases(testbed)
    )
    engine.arm()

    warmup = 1e-3
    dport = 5001
    receiver = UdpReceiver(testbed.h2, dport)
    sender = UdpSender(
        testbed.h1,
        dst_mac=testbed.h2.mac,
        dst_ip=testbed.h2.ip,
        dport=dport,
        rate_bps=rate_mbps * 1e6,
        payload_size=payload_size,
        send_cost=base.udp_send_cost,
    )
    sender.start(duration, delay=warmup)
    net.run(until=warmup + duration + DRAIN_TIME)
    flow = receiver.result(sender, duration)
    receiver.close()
    controller.detach()

    # Post-quarantine gap analysis: the sender paces deterministically
    # (seq i departs at warmup + i * interval), so the datagrams offered
    # after the first quarantine are exactly the seqs >= the cutoff.
    quarantine_times = [
        t["time"] for t in controller.transitions if t["event"] == "quarantine"
    ]
    post_quarantine_gaps = None
    if quarantine_times:
        first_q = min(quarantine_times)
        seen = receiver.received_sequences()
        interval = sender.interval
        post = [
            s for s in range(sender.sent) if warmup + s * interval >= first_q
        ]
        post_quarantine_gaps = sum(1 for s in post if s not in seen)

    alarm_counts: Dict[str, int] = {}
    for alarm in testbed.chain.alarms.alarms:
        alarm_counts[alarm.kind] = alarm_counts.get(alarm.kind, 0) + 1

    return {
        "variant": variant,
        "schedule": engine.schedule.name,
        "seed": seed,
        "sent": flow.sent,
        "received": flow.received_unique,
        "duplicates": flow.duplicates,
        "lost": flow.lost,
        "loss_rate": flow.loss_rate,
        "injections": engine.injections,
        "transitions": controller.transitions,
        "quarantined": sorted(
            {t["branch"] for t in controller.transitions if t["event"] == "quarantine"}
        ),
        "readmitted": sorted(
            {t["branch"] for t in controller.transitions if t["event"] == "readmit"}
        ),
        "post_quarantine_gaps": post_quarantine_gaps,
        "alarms": alarm_counts,
        "compare": core.stats.as_dict(),
    }


#: the adversary axis of the ctrlbft sweep.  The fault always targets
#: replica ``c1`` when it exists (c0 at ctrl_k=1, giving the
#: *unprotected* baseline: a lone lying controller installs its lies).
CTRL_ADVERSARIES = ("none", "crash", "lying")


def _ctrl_adversary_schedule(adversary: str, ctrl_k: int) -> Optional[FaultSchedule]:
    target = f"c{min(1, ctrl_k - 1)}"
    if adversary == "none":
        return None
    if adversary == "crash":
        return FaultSchedule(
            [ControllerCrash(0.012, target, restart_at=0.030)],
            name="ctrl_crash",
        )
    if adversary == "lying":
        return FaultSchedule(
            [ControllerCompromise(0.010, target, strategy="blackhole")],
            name="ctrl_lying",
        )
    raise ValueError(
        f"unknown control-plane adversary {adversary!r} "
        f"(known: {list(CTRL_ADVERSARIES)})"
    )


@register_runner("ctrl.run")
def ctrl_run(
    seed: int,
    variant: str = "central3",
    ctrl_k: int = 3,
    adversary: str = "none",
    duration: float = 0.04,
    rate_mbps: float = 10.0,
    payload_size: int = 512,
    vote_timeout: float = 2e-3,
    miss_threshold: int = 4,
    probation_clean_target: int = 6,
    flow_hard_timeout: float = 5e-3,
    params: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One UDP flow under a replicated control plane and one adversary.

    Returns the BFT record: flow loss, a fingerprint of the exact
    data-plane delivery (bit-identity across ctrl_k is the acceptance
    check), vote/blocked counters, the quarantine timeline and the
    detection latency from fault injection to quarantine.
    """
    ctrl = CtrlParams(
        ctrl_k=ctrl_k,
        vote_timeout=vote_timeout,
        miss_threshold=miss_threshold,
        probation_clean_target=probation_clean_target,
        flow_hard_timeout=flow_hard_timeout,
    )
    tb = build_ctrl_testbed(variant, ctrl=ctrl, params=params_from_dict(params), seed=seed)
    net = tb.network
    base = tb.testbed.params

    schedule = _ctrl_adversary_schedule(adversary, ctrl_k)
    engine = None
    if schedule is not None:
        engine = ChaosEngine(
            schedule,
            net,
            aliases=chaos_aliases(tb.testbed),
            control_plane=tb.control_plane,
        )
        engine.arm()

    # One reverse datagram teaches every replica h2's port before the
    # forward flow starts, so forward decisions are FlowMod installs
    # (votable, and worth lying about) instead of endless floods.
    primer = UdpSender(
        tb.h2,
        dst_mac=tb.h1.mac,
        dst_ip=tb.h1.ip,
        dport=5002,
        rate_bps=rate_mbps * 1e6,
        payload_size=64,
        send_cost=base.udp_send_cost,
    )
    primer.start(1e-6, delay=2e-4)

    warmup = 1e-3
    dport = 5001
    receiver = UdpReceiver(tb.h2, dport)
    sender = UdpSender(
        tb.h1,
        dst_mac=tb.h2.mac,
        dst_ip=tb.h2.ip,
        dport=dport,
        rate_bps=rate_mbps * 1e6,
        payload_size=payload_size,
        send_cost=base.udp_send_cost,
    )
    sender.start(duration, delay=warmup)
    net.run(until=warmup + duration + DRAIN_TIME)
    flow = receiver.result(sender, duration)
    sequences = sorted(receiver.received_sequences())
    receiver.close()
    if tb.quarantine is not None:
        tb.quarantine.detach()
    tb.control_plane.flush()

    # The bit-identity artefact: a digest of exactly which datagrams the
    # receiver saw.  Equal fingerprints == identical data-plane outcome.
    fingerprint = hashlib.sha256(
        ",".join(str(s) for s in sequences).encode("ascii")
    ).hexdigest()[:16]

    transitions = tb.quarantine.transitions if tb.quarantine is not None else []
    quarantine_times = [t["time"] for t in transitions if t["event"] == "quarantine"]
    injections = engine.injections if engine is not None else []
    detection_latency = None
    if quarantine_times and injections:
        detection_latency = min(quarantine_times) - min(i["time"] for i in injections)

    handles = tb.control_plane.replica_stats()
    malicious_emitted = sum(h["malicious_emitted"] for h in handles)
    if ctrl_k >= 2:
        # The voter's accounting of lies that assembled a majority.
        malicious_installed = tb.compare.stats.malicious_released
    else:
        # Pass-through: every lie the lone replica emitted was installed.
        malicious_installed = malicious_emitted

    alarm_counts: Dict[str, int] = {}
    for alarm in tb.testbed.chain.alarms.alarms:
        alarm_counts[alarm.kind] = alarm_counts.get(alarm.kind, 0) + 1

    return {
        "variant": variant,
        "ctrl_k": ctrl_k,
        "adversary": adversary,
        "seed": seed,
        "sent": flow.sent,
        "received": flow.received_unique,
        "duplicates": flow.duplicates,
        "lost": flow.lost,
        "loss_rate": flow.loss_rate,
        "data_fingerprint": fingerprint,
        "malicious_emitted": malicious_emitted,
        "malicious_installed": malicious_installed,
        "detection_latency": detection_latency,
        "ctrl_quarantined": sorted(
            {t["branch"] for t in transitions if t["event"] == "quarantine"}
        ),
        "ctrl_readmitted": sorted(
            {t["branch"] for t in transitions if t["event"] == "readmit"}
        ),
        "transitions": transitions,
        "injections": injections,
        "alarms": alarm_counts,
        "ctrl": tb.compare.stats.as_dict(),
        "replicas": handles,
    }


@register_runner("fig8.jitter")
def jitter_sample(
    variant: str,
    payload_size: int,
    rate_mbps: float,
    duration: float,
    seed: int,
    params: Optional[Dict[str, Any]] = None,
) -> float:
    """One fixed-bitrate UDP run; returns RFC 3550 jitter (ms)."""
    result = run_udp_flow(
        build_scenario(variant, params, seed).path(),
        rate_bps=rate_mbps * 1e6,
        duration=duration,
        payload_size=payload_size,
    )
    return result.jitter_ms
