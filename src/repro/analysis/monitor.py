"""Operator-facing health monitoring over NetCo's alarm stream.

The paper's compare "raises an alarm to the network administrator";
:class:`HealthMonitor` is the administrator's side of that: it follows
one or more alarm sinks, keeps per-branch health state, and measures
**detection latency** — how long after a compromise begins the first
alarm fires — which the MTTD benchmark reports per attack type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.alarms import (
    ALARM_BRANCH_QUARANTINED,
    ALARM_BRANCH_READMITTED,
    ALARM_DOS_SUSPECTED,
    ALARM_MINORITY_DIVERGENCE,
    ALARM_ROUTER_UNAVAILABLE,
    ALARM_SINGLE_SOURCE_PACKET,
    ALARM_SPOOFED_BRANCH,
    Alarm,
    AlarmSink,
)

#: alarm kind -> operator severity
SEVERITIES = {
    ALARM_SINGLE_SOURCE_PACKET: "warning",
    ALARM_MINORITY_DIVERGENCE: "warning",
    ALARM_SPOOFED_BRANCH: "critical",
    ALARM_DOS_SUSPECTED: "critical",
    ALARM_ROUTER_UNAVAILABLE: "critical",
    # Degraded mode: the compare keeps forwarding on the shrunken bundle
    # but (at k=3) masks nothing until the branch is re-admitted.
    ALARM_BRANCH_QUARANTINED: "critical",
    ALARM_BRANCH_READMITTED: "warning",
}


@dataclass
class BranchHealth:
    """Rolling view of one untrusted branch."""

    branch: int
    alarms: int = 0
    first_alarm_at: Optional[float] = None
    last_alarm_at: Optional[float] = None
    kinds: Dict[str, int] = field(default_factory=dict)

    @property
    def suspect(self) -> bool:
        return self.alarms > 0

    @property
    def worst_severity(self) -> str:
        if any(SEVERITIES.get(kind) == "critical" for kind in self.kinds):
            return "critical"
        if self.kinds:
            return "warning"
        return "healthy"


class HealthMonitor:
    """Aggregate one or more alarm sinks into operator state."""

    def __init__(self) -> None:
        self._branches: Dict[int, BranchHealth] = {}
        self._unattributed: List[Alarm] = []
        self._seen: int = 0
        self._sinks: List[AlarmSink] = []
        self._seen_per_sink: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def watch(self, sink: AlarmSink) -> None:
        """Follow a sink (poll-style: call :meth:`refresh` to ingest)."""
        self._sinks.append(sink)

    def refresh(self) -> int:
        """Ingest alarms raised since the last refresh; returns count."""
        new = 0
        for sink in self._sinks:
            for alarm in sink.alarms[self._per_sink_seen(sink):]:
                self._ingest(alarm)
                new += 1
            self._seen_per_sink[id(sink)] = len(sink.alarms)
        return new

    def _per_sink_seen(self, sink: AlarmSink) -> int:
        return self._seen_per_sink.get(id(sink), 0)

    def _ingest(self, alarm: Alarm) -> None:
        self._seen += 1
        if alarm.branch is None:
            self._unattributed.append(alarm)
            return
        health = self._branches.setdefault(alarm.branch, BranchHealth(alarm.branch))
        health.alarms += 1
        health.kinds[alarm.kind] = health.kinds.get(alarm.kind, 0) + 1
        if health.first_alarm_at is None:
            health.first_alarm_at = alarm.time
        health.last_alarm_at = alarm.time

    # ------------------------------------------------------------------
    def branch(self, branch: int) -> BranchHealth:
        return self._branches.get(branch, BranchHealth(branch))

    def suspects(self) -> List[int]:
        """Branches with at least one alarm, worst first."""
        order = {"critical": 0, "warning": 1, "healthy": 2}
        suspect = [h for h in self._branches.values() if h.suspect]
        suspect.sort(key=lambda h: (order[h.worst_severity], -h.alarms))
        return [h.branch for h in suspect]

    def detection_latency(self, compromise_at: float) -> Optional[float]:
        """Time from compromise onset to the first alarm (any branch)."""
        first_times = [
            h.first_alarm_at
            for h in self._branches.values()
            if h.first_alarm_at is not None and h.first_alarm_at >= compromise_at
        ]
        first_times += [
            a.time for a in self._unattributed if a.time >= compromise_at
        ]
        if not first_times:
            return None
        return min(first_times) - compromise_at

    def summary(self) -> str:
        """One-line-per-branch operator report."""
        if not self._branches and not self._unattributed:
            return "all branches healthy (no alarms)"
        lines = []
        for branch in sorted(self._branches):
            health = self._branches[branch]
            kinds = ", ".join(f"{k}x{c}" for k, c in sorted(health.kinds.items()))
            lines.append(
                f"branch {branch}: {health.worst_severity.upper()} "
                f"({health.alarms} alarms: {kinds})"
            )
        if self._unattributed:
            lines.append(f"unattributed alarms: {len(self._unattributed)}")
        return "\n".join(lines)
