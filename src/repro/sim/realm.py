"""The packet-train batch realm: a micro-event tier under the event heap.

:class:`BatchRealm` lets the data plane move whole packet trains
(:class:`repro.net.packet.PacketBatch`) through the pipeline while
keeping every observable bit-identical to the event-per-packet run.  The
trick is a second, much cheaper event queue:

* Batch stages post *micro-events* — bare ``(time, seq, fn, args)``
  tuples on a private heap, no ``_Event`` object, no closure, no
  :class:`EventHandle`.
* The realm keeps exactly one *tick* event on the outer simulator heap,
  pinned at the earliest micro-event time.  When the tick fires, the
  realm drains every micro-event that is due strictly before the next
  outer event (and no later than the active ``run(until=...)`` horizon).
* While draining, the realm **advances ``sim._now`` to each
  micro-event's virtual timestamp**.  Any unmodified legacy handler
  invoked from micro context therefore sees exactly the clock it would
  have seen as an outer event — per-packet fallbacks are ordinary calls
  into the existing code, not re-implementations.

Because micro-events execute in global timestamp order, interleaved with
the outer heap, all shared mutable state (link queues, CPU busy chains,
vote books, chaos fault flags) is read and written at the same virtual
times as in the unbatched run.  Ties between a micro-event and an outer
event at the same float timestamp go to the outer event; within the
micro heap, ties are FIFO by posting order, mirroring the outer engine's
sequence numbers.
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import active_registry
from repro.sim.engine import EventHandle, Simulator

#: fallback reasons tracked by :attr:`BatchRealm.fallbacks` — per-packet
#: exits from the batch fast path
REASON_VOTE_BOUNDARY = "vote-boundary"
REASON_FAULT_WINDOW = "fault-window"
REASON_MIXED_HEADERS = "mixed-headers"


class BatchRealm:
    """Micro-event scheduler for packet trains (see module docstring)."""

    __slots__ = (
        "sim",
        "train",
        "_heap",
        "_seq",
        "_tick",
        "_tick_at",
        "_draining",
        "_mark",
        "_nxt",
        "batches_total",
        "packets_batched",
        "splits_total",
        "merges_total",
        "fallbacks",
        "size_counts",
        "_c_batches",
        "_c_fallback",
        "_h_size",
    )

    def __init__(self, sim: Simulator, train: int) -> None:
        if train < 2:
            raise ValueError(f"batch realm needs train >= 2, got {train}")
        self.sim = sim
        self.train = train
        self._heap: List[Tuple[float, int, Callable[..., None], tuple]] = []
        self._seq = 0
        self._tick: Optional[EventHandle] = None
        self._tick_at = math.inf
        self._draining = False
        self._mark = -1
        self._nxt = math.inf
        self.batches_total = 0
        self.packets_batched = 0
        self.splits_total = 0
        self.merges_total = 0
        self.fallbacks: Dict[str, int] = {}
        self.size_counts: Dict[int, int] = {}
        registry = active_registry()
        if registry.enabled:
            self._c_batches = registry.counter(
                "batches_total", "packet trains emitted into the batch tier"
            )
            self._c_fallback = registry.counter(
                "batch_fallback_total",
                "packets split out of a train for per-packet handling",
                labelnames=("reason",),
            )
            self._h_size = registry.histogram(
                "batch_size_packets",
                "packets per emitted train",
                buckets=(1, 2, 4, 8, 16, 32, 64, 128),
            )
        else:
            self._c_batches = None
            self._c_fallback = None
            self._h_size = None
        sim.realm = self

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def note_batch(self, size: int) -> None:
        """Record the emission of one train of ``size`` packets."""
        self.batches_total += 1
        self.packets_batched += size
        self.size_counts[size] = self.size_counts.get(size, 0) + 1
        if self._c_batches is not None:
            self._c_batches.inc()
            self._h_size.observe(size)

    def note_fallback(self, reason: str, count: int = 1) -> None:
        """Record ``count`` packets leaving the fast path for ``reason``."""
        self.splits_total += count
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + count
        if self._c_fallback is not None:
            self._c_fallback.labels(reason).inc(count)

    def stats(self) -> Dict[str, Any]:
        """Deterministic snapshot for RunReports / obs summaries."""
        return {
            "train": self.train,
            "batches_total": self.batches_total,
            "packets_batched": self.packets_batched,
            "splits_total": self.splits_total,
            "merges_total": self.merges_total,
            "fallbacks": {k: self.fallbacks[k] for k in sorted(self.fallbacks)},
            "size_counts": {
                str(k): self.size_counts[k] for k in sorted(self.size_counts)
            },
        }

    # ------------------------------------------------------------------
    # micro-event scheduling
    # ------------------------------------------------------------------
    def post(self, when: float, fn: Callable[..., None], args: tuple) -> None:
        """Schedule ``fn(*args)`` at virtual time ``when``.

        Micro-events run in global timestamp order relative to the outer
        heap; ties at identical floats run the outer event first.
        """
        heappush(self._heap, (when, self._seq, fn, args))
        self._seq += 1
        # Inside a drain the loop itself sees the new heap head; the tick
        # is only re-armed when it ends — so posts from micro context are
        # two heap ops, never an outer-heap cancel/reschedule.
        if not self._draining and when < self._tick_at:
            self._retick(when)

    def outer_next(self) -> float:
        """The outer heap's next event time, cached between schedules.

        ``sim._seq`` is bumped by every ``schedule_at``, so it doubles as
        a cheap change marker.  Cancellations are not tracked: they only
        push the true head later, so the cached value is at worst *early*
        — callers stop sooner than strictly necessary, never too late.
        """
        sim = self.sim
        if sim._seq != self._mark:
            self._nxt = sim.peek_time()
            self._mark = sim._seq
        return self._nxt

    def runnable(self, when: float) -> bool:
        """May a stage advance to virtual time ``when`` inline, right now?

        True only while no other micro-event and no outer event is due at
        or before ``when`` (and ``when`` is within the run horizon) — the
        barrier that keeps all shared state evolving in global time order.
        """
        heap = self._heap
        if heap and when >= heap[0][0]:
            return False
        return when <= self.sim._horizon and when < self.outer_next()

    def _retick(self, when: float) -> None:
        if self._tick is not None:
            self._tick.cancel()
        self._tick_at = when
        self._tick = self.sim.schedule_at(when, self._on_tick)

    def _on_tick(self) -> None:
        self._tick = None
        self._tick_at = math.inf
        sim = self.sim
        heap = self._heap
        horizon = sim._horizon
        self._draining = True
        if sim._seq != self._mark:
            self._nxt = sim.peek_time()
            self._mark = sim._seq
        nxt = self._nxt
        mark = self._mark
        while heap:
            when = heap[0][0]
            if when > horizon or when >= nxt:
                break
            when, _seq, fn, args = heappop(heap)
            sim._now = when
            fn(*args)
            if sim._seq != mark:
                nxt = self._nxt = sim.peek_time()
                mark = self._mark = sim._seq
        self._draining = False
        if heap:
            self._retick(heap[0][0])
