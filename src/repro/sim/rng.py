"""Seeded random-number streams.

Every stochastic element in the simulation (link loss, adversarial packet
crafting, workload arrival processes) draws from its own named stream so
that adding a new random consumer does not perturb the draws seen by
existing ones.  This is the standard variance-reduction discipline for
network simulators (ns-2/ns-3 use the same design).
"""

from __future__ import annotations

import random
import zlib
from typing import Dict


class RngStreams:
    """A family of independent, deterministically seeded RNGs.

    Streams are keyed by name.  The per-stream seed is derived from the
    master seed and a stable hash of the stream name, so runs are
    reproducible across processes and Python versions (``zlib.crc32`` is
    stable, unlike built-in ``hash``).
    """

    def __init__(self, master_seed: int = 0) -> None:
        self._master_seed = master_seed
        self._streams: Dict[str, random.Random] = {}

    @property
    def master_seed(self) -> int:
        return self._master_seed

    def stream(self, name: str) -> random.Random:
        """Return the RNG for ``name``, creating it deterministically."""
        rng = self._streams.get(name)
        if rng is None:
            derived = (self._master_seed << 32) ^ zlib.crc32(name.encode("utf-8"))
            rng = random.Random(derived)
            self._streams[name] = rng
        return rng

    def fork(self, salt: str) -> "RngStreams":
        """Derive an independent family (e.g. per repetition of a run)."""
        derived = (self._master_seed << 16) ^ zlib.crc32(salt.encode("utf-8"))
        return RngStreams(derived)
