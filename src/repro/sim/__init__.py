"""Discrete-event simulation kernel for the NetCo reproduction."""

from repro.sim.engine import (
    CpuResource,
    EventHandle,
    PeriodicTask,
    SimulationError,
    Simulator,
    Timer,
)
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus, TraceRecord

__all__ = [
    "CpuResource",
    "EventHandle",
    "PeriodicTask",
    "SimulationError",
    "Simulator",
    "Timer",
    "RngStreams",
    "TraceBus",
    "TraceRecord",
]
