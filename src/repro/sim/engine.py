"""Discrete-event simulation kernel.

The entire NetCo reproduction runs on top of this engine: links, switch
datapaths, the compare element, traffic generators and controller channels
all schedule callbacks on a single shared :class:`Simulator`.

Time is kept as a float number of *seconds* of simulated time.  The engine
is deterministic: events scheduled at the same timestamp fire in the order
they were scheduled (FIFO tie-breaking via a monotonically increasing
sequence number), and all randomness flows through seeded
:class:`repro.sim.rng.RngStreams`.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional, Tuple


class SimulationError(Exception):
    """Raised for invalid uses of the simulation engine."""


class _Event:
    """A single scheduled callback.

    Events sit in the heap as ``(time, seq, event)`` tuples, so ordering
    is decided by plain float/int comparisons — simultaneous events
    preserve FIFO scheduling order, which keeps runs bit-for-bit
    reproducible — and the event object itself is a bare slotted record.
    """

    __slots__ = ("time", "callback", "cancelled", "fired")

    def __init__(self, time: float, callback: Callable[[], None]) -> None:
        self.time = time
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False
        self.fired = False


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; allows cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _Event, sim: "Simulator") -> None:
        self._event = event
        self._sim = sim

    def cancel(self) -> None:
        """Cancel the event if it has not fired yet (idempotent)."""
        event = self._event
        if not event.cancelled and not event.fired:
            event.cancelled = True
            event.callback = None  # release closure references early
            self._sim._note_cancel()

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        """Simulated timestamp at which the event will fire."""
        return self._event.time


class Simulator:
    """A deterministic event-driven simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(0.5, lambda: print("fires at t=0.5s"))
        sim.run(until=1.0)
    """

    # Compact the heap when cancelled entries both dominate it and are
    # numerous enough to be worth the O(n) rebuild (Timer restarts can
    # cancel far more events than ever fire).
    _COMPACT_MIN_DEAD = 64

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, _Event]] = []
        self._seq = 0
        self._live = 0  # queued, non-cancelled events (O(1) pending_events)
        self._dead = 0  # cancelled events still sitting in the heap
        self._peak_pending = 0  # high-water mark of _live (telemetry)
        self._running = False
        self._events_processed = 0
        self._stop_requested = False
        #: attached :class:`repro.sim.realm.BatchRealm` (packet-train tier),
        #: or None when the run is purely event-per-packet
        self.realm = None
        #: the ``until`` horizon of the active :meth:`run` call; the batch
        #: realm must not advance virtual time past it
        self._horizon = math.inf

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (telemetry/debugging)."""
        return self._events_processed

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay schedules the callback
        to run after all events already queued for the current instant.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``when``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past (now={self._now}, when={when})"
            )
        event = _Event(when, callback)
        heapq.heappush(self._queue, (when, self._seq, event))
        self._seq += 1
        self._live += 1
        if self._live > self._peak_pending:
            self._peak_pending = self._live
        return EventHandle(event, self)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events in timestamp order.

        Args:
            until: stop once the clock would pass this simulated time; the
                clock is advanced to ``until`` on return.  ``None`` runs to
                queue exhaustion.
            max_events: safety valve; raise :class:`SimulationError` if more
                than this many events execute (useful to catch runaway
                retransmission loops in tests).
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stop_requested = False
        self._horizon = until if until is not None else math.inf
        executed = 0
        queue = self._queue
        try:
            while queue:
                if self._stop_requested:
                    break
                event = queue[0][2]
                if event.cancelled:
                    heapq.heappop(queue)
                    self._dead -= 1
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(queue)
                self._live -= 1
                self._now = event.time
                callback = event.callback
                event.fired = True
                event.callback = None
                callback()
                self._events_processed += 1
                executed += 1
                if max_events is not None and executed > max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway event loop?"
                    )
            if until is not None and not self._stop_requested and self._now < until:
                self._now = until
        finally:
            self._running = False
            self._horizon = math.inf

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stop_requested = True

    def peek_time(self) -> float:
        """Timestamp of the next live queued event (``inf`` when empty).

        Cancelled entries sitting on top of the heap are popped on the
        way — they would never fire anyway.  Used by the batch realm to
        bound how far its micro-events may run ahead of the outer heap.
        """
        queue = self._queue
        while queue:
            head = queue[0]
            if head[2].cancelled:
                heapq.heappop(queue)
                self._dead -= 1
                continue
            return head[0]
        return math.inf

    def pending_events(self) -> int:
        """Number of queued (non-cancelled) events."""
        return self._live

    @property
    def peak_pending_events(self) -> int:
        """High-water mark of the pending-event count (telemetry)."""
        return self._peak_pending

    def _note_cancel(self) -> None:
        """Bookkeeping for an EventHandle.cancel(); may compact the heap."""
        self._live -= 1
        self._dead += 1
        if self._dead > self._COMPACT_MIN_DEAD and self._dead * 2 > len(self._queue):
            # In place: run() iterates over the same list object.
            self._queue[:] = [item for item in self._queue if not item[2].cancelled]
            heapq.heapify(self._queue)
            self._dead = 0


class CpuResource:
    """A single-server processing resource with FIFO queueing.

    Used to model a shared CPU: Mininet runs every software switch on the
    same machine, so per-packet datapath work from *different* switches
    serialises.  ``acquire`` books ``duration`` seconds of service
    starting no earlier than ``now`` and returns the completion time.
    """

    __slots__ = ("name", "_busy_until", "busy_time")

    def __init__(self, name: str = "cpu") -> None:
        self.name = name
        self._busy_until = 0.0
        self.busy_time = 0.0

    def acquire(self, now: float, duration: float) -> float:
        start = max(now, self._busy_until)
        finish = start + duration
        self._busy_until = finish
        self.busy_time += duration
        return finish

    def backlog(self, now: float) -> float:
        """Seconds of queued work ahead of a new arrival."""
        return max(0.0, self._busy_until - now)


class Timer:
    """A restartable one-shot timer bound to a simulator.

    Wraps the schedule/cancel dance used by retransmission timers, compare
    buffer expirations and DoS block timers.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], None]) -> None:
        self._sim = sim
        self._callback = callback
        self._handle: Optional[EventHandle] = None

    def start(self, delay: float) -> None:
        """(Re)start the timer to fire ``delay`` seconds from now."""
        self.cancel()
        self._handle = self._sim.schedule(delay, self._fire)

    def cancel(self) -> None:
        """Stop the timer if running (idempotent)."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def running(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    def _fire(self) -> None:
        self._handle = None
        self._callback()


class PeriodicTask:
    """Invoke a callback at a fixed simulated period until stopped."""

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], None],
        jitter_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive (got {period})")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._jitter_fn = jitter_fn
        self._handle: Optional[EventHandle] = None
        self._stopped = True

    def start(self, initial_delay: float = 0.0) -> None:
        self._stopped = False
        self._handle = self._sim.schedule(initial_delay, self._tick)

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    @property
    def running(self) -> bool:
        return not self._stopped

    def _tick(self) -> None:
        if self._stopped:
            return
        self._callback()
        if self._stopped:  # callback may stop the task
            return
        delay = self._period
        if self._jitter_fn is not None:
            delay = max(0.0, delay + self._jitter_fn())
        self._handle = self._sim.schedule(delay, self._tick)
