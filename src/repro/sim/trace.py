"""Event tracing / telemetry bus.

The case study in Section VI of the paper verifies routing behaviour with
``tcpdump`` taps on every interface adjacent to the benign path plus flow
table counters.  :class:`TraceBus` is the simulator-native equivalent: any
component can ``emit`` a typed record, and observers (tests, the case-study
screening harness, the packet-lifecycle tracer, debugging tools) subscribe
by topic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One telemetry record."""

    time: float
    topic: str
    source: str
    data: Dict[str, Any] = field(default_factory=dict)


Listener = Callable[[TraceRecord], None]


class TraceBus:
    """Publish/subscribe bus for simulation telemetry.

    Topics are plain strings (``"link.drop"``, ``"compare.release"``,
    ``"alarm"`` ...).  Subscriptions come in three shapes:

    * an exact topic (``"link.drop"``);
    * a topic-prefix pattern ending in ``*`` (``"link.*"`` receives
      ``link.drop``, ``link.tx`` ...; ``"link*"`` works the same way —
      everything before the ``*`` is the prefix);
    * ``""`` (receives everything).

    A record is delivered at most once per subscribed listener entry, in
    registration-shape order: exact listeners first, then prefix
    listeners, then catch-all listeners.

    Records are also retained in memory (bounded) for post-run
    assertions, with a per-topic index so :meth:`select`/:meth:`count`
    on an exact topic do not scan the full retained list.

    **Saturation contract.**  When retention saturates (``max_records``
    reached), further records are still *delivered* to listeners but no
    longer retained.  Exactly once, a ``trace.saturation`` warning record
    is appended to the retained log (so the log is at most
    ``max_records + 1`` long) and dispatched to listeners, and
    :attr:`dropped_count` counts every record lost to truncation.  Note
    the deliberate ordering asymmetry, which tests rely on:

    * **listeners** observe every record in emit order, with the warning
      injected immediately *before* the first dropped record (the
      warning announces the drop that is about to be delivered);
    * **retention** ends with the warning as its final entry — the first
      dropped record itself is *not* retained (that is what "dropped"
      means), so the retained log and the listener stream intentionally
      diverge from the first drop onward.

    ``clear()`` resets retention, the topic index, ``dropped_count`` and
    re-arms the one-time warning.
    """

    #: topic of the one-time retention-saturation warning record
    SATURATION_TOPIC = "trace.saturation"

    def __init__(self, retain: bool = True, max_records: int = 1_000_000) -> None:
        self._listeners: Dict[str, List[Listener]] = {}
        self._prefix_listeners: Dict[str, List[Listener]] = {}
        self._retain = retain
        self._max_records = max_records
        self._saturation_warned = False
        self.dropped_count = 0
        self.records: List[TraceRecord] = []
        self._by_topic: Dict[str, List[TraceRecord]] = {}

    def subscribe(self, topic: str, listener: Listener) -> None:
        """Subscribe to an exact topic, a ``prefix*`` pattern, or ``""``."""
        if topic.endswith("*"):
            self._prefix_listeners.setdefault(topic[:-1], []).append(listener)
        else:
            self._listeners.setdefault(topic, []).append(listener)

    def unsubscribe(self, topic: str, listener: Listener) -> None:
        table = self._prefix_listeners if topic.endswith("*") else self._listeners
        key = topic[:-1] if topic.endswith("*") else topic
        listeners = table.get(key, [])
        if listener in listeners:
            listeners.remove(listener)

    def emit(
        self,
        time: float,
        topic: str,
        source: str,
        **data: Any,
    ) -> None:
        record = TraceRecord(time=time, topic=topic, source=source, data=data)
        if self._retain:
            if len(self.records) < self._max_records:
                self._retain_record(record)
            else:
                self.dropped_count += 1
                if not self._saturation_warned:
                    self._saturation_warned = True
                    warning = TraceRecord(
                        time=time,
                        topic=self.SATURATION_TOPIC,
                        source="TraceBus",
                        data={
                            "max_records": self._max_records,
                            "first_dropped_topic": topic,
                        },
                    )
                    self._retain_record(warning)
                    self._dispatch(warning)
        self._dispatch(record)

    def _retain_record(self, record: TraceRecord) -> None:
        self.records.append(record)
        bucket = self._by_topic.get(record.topic)
        if bucket is None:
            bucket = self._by_topic[record.topic] = []
        bucket.append(record)

    def _dispatch(self, record: TraceRecord) -> None:
        topic = record.topic
        for listener in self._listeners.get(topic, ()):
            listener(record)
        if self._prefix_listeners:
            for prefix, listeners in self._prefix_listeners.items():
                if topic.startswith(prefix):
                    for listener in listeners:
                        listener(record)
        for listener in self._listeners.get("", ()):
            listener(record)

    # ------------------------------------------------------------------
    # query helpers (used heavily by tests and the case-study screening)
    # ------------------------------------------------------------------
    def topics(self) -> List[str]:
        """Topics present in the retained log, sorted."""
        return sorted(self._by_topic)

    def select(
        self,
        topic: Optional[str] = None,
        source: Optional[str] = None,
    ) -> List[TraceRecord]:
        """Return retained records filtered by topic and/or source.

        ``topic`` may be exact (served from the per-topic index) or a
        ``prefix*`` pattern (scans the retained list to preserve global
        emission order across the matching topics).
        """
        if topic is None:
            out: List[TraceRecord] = self.records
        elif topic.endswith("*"):
            prefix = topic[:-1]
            out = [r for r in self.records if r.topic.startswith(prefix)]
        else:
            out = self._by_topic.get(topic, [])
        if source is not None:
            return [r for r in out if r.source == source]
        return list(out)

    def count(self, topic: Optional[str] = None, source: Optional[str] = None) -> int:
        if source is None and topic is not None and not topic.endswith("*"):
            return len(self._by_topic.get(topic, ()))
        return len(self.select(topic=topic, source=source))

    def clear(self) -> None:
        self.records.clear()
        self._by_topic.clear()
        self.dropped_count = 0
        self._saturation_warned = False
