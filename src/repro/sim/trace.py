"""Event tracing / telemetry bus.

The case study in Section VI of the paper verifies routing behaviour with
``tcpdump`` taps on every interface adjacent to the benign path plus flow
table counters.  :class:`TraceBus` is the simulator-native equivalent: any
component can ``emit`` a typed record, and observers (tests, the case-study
screening harness, debugging tools) subscribe by topic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One telemetry record."""

    time: float
    topic: str
    source: str
    data: Dict[str, Any] = field(default_factory=dict)


Listener = Callable[[TraceRecord], None]


class TraceBus:
    """Publish/subscribe bus for simulation telemetry.

    Topics are plain strings (``"link.drop"``, ``"compare.release"``,
    ``"alarm"`` ...).  A listener subscribed to ``""`` receives everything.
    Records are also retained in memory (bounded) for post-run assertions.

    When retention saturates (``max_records`` reached), further records
    are still delivered to listeners but no longer retained: a one-time
    ``trace.saturation`` warning record is appended (so the retained log
    is at most ``max_records`` + 1 long) and :attr:`dropped_count`
    counts every record lost to truncation, so tests can detect a
    truncated telemetry log instead of silently passing on it.
    """

    #: topic of the one-time retention-saturation warning record
    SATURATION_TOPIC = "trace.saturation"

    def __init__(self, retain: bool = True, max_records: int = 1_000_000) -> None:
        self._listeners: Dict[str, List[Listener]] = {}
        self._retain = retain
        self._max_records = max_records
        self._saturation_warned = False
        self.dropped_count = 0
        self.records: List[TraceRecord] = []

    def subscribe(self, topic: str, listener: Listener) -> None:
        self._listeners.setdefault(topic, []).append(listener)

    def unsubscribe(self, topic: str, listener: Listener) -> None:
        listeners = self._listeners.get(topic, [])
        if listener in listeners:
            listeners.remove(listener)

    def emit(
        self,
        time: float,
        topic: str,
        source: str,
        **data: Any,
    ) -> None:
        record = TraceRecord(time=time, topic=topic, source=source, data=data)
        if self._retain:
            if len(self.records) < self._max_records:
                self.records.append(record)
            else:
                self.dropped_count += 1
                if not self._saturation_warned:
                    self._saturation_warned = True
                    warning = TraceRecord(
                        time=time,
                        topic=self.SATURATION_TOPIC,
                        source="TraceBus",
                        data={
                            "max_records": self._max_records,
                            "first_dropped_topic": topic,
                        },
                    )
                    self.records.append(warning)
                    self._dispatch(warning)
        self._dispatch(record)

    def _dispatch(self, record: TraceRecord) -> None:
        for listener in self._listeners.get(record.topic, ()):
            listener(record)
        for listener in self._listeners.get("", ()):
            listener(record)

    # ------------------------------------------------------------------
    # query helpers (used heavily by tests and the case-study screening)
    # ------------------------------------------------------------------
    def select(
        self,
        topic: Optional[str] = None,
        source: Optional[str] = None,
    ) -> List[TraceRecord]:
        """Return retained records filtered by exact topic and/or source."""
        out = self.records
        if topic is not None:
            out = [r for r in out if r.topic == topic]
        if source is not None:
            out = [r for r in out if r.source == source]
        return list(out)

    def count(self, topic: Optional[str] = None, source: Optional[str] = None) -> int:
        return len(self.select(topic=topic, source=source))

    def clear(self) -> None:
        self.records.clear()
        self.dropped_count = 0
        self._saturation_warned = False
