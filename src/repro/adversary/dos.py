"""Denial-of-service attacks (threat 4): flood or blackhole.

"An adversarial router may also generate a very large number of packets
in order to overload the network ... A DoS attack can also be performed
by dropping packets."
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.adversary.behaviors import AdversarialBehavior, Selector, match_all
from repro.net.packet import Packet
from repro.openflow.switch import OpenFlowSwitch
from repro.sim import PeriodicTask


class ReplayFloodBehavior(AdversarialBehavior):
    """Amplify: emit ``amplification`` extra copies of each forwarded
    packet on its normal route.

    Against the compare this shows up as the *same packet on one ingress
    port multiple times* (Section IV, case 2) and triggers the advised
    port block.
    """

    def __init__(
        self,
        amplification: int = 10,
        selector: Optional[Selector] = None,
        name: str = "",
    ) -> None:
        super().__init__(name or "replay-flood")
        if amplification < 1:
            raise ValueError("amplification must be >= 1")
        self.amplification = amplification
        self.selector = selector or match_all()
        self.replayed = 0

    def handle(self, switch: OpenFlowSwitch, packet: Packet, in_port_no: int) -> bool:
        self.packets_seen += 1
        forwarded = self.forward_normally(switch, packet, in_port_no)
        if forwarded and self.selector(packet):
            for _ in range(self.amplification):
                self.forward_normally(switch, packet, in_port_no)
                self.replayed += 1
            self.trace_tamper(switch, "replay", packet)
        return True


class GeneratorFloodBehavior(AdversarialBehavior):
    """Generate a high-rate stream of fabricated packets out of a port.

    ``factory(i)`` builds the i-th flood packet; rate is packets/second.
    Normal traffic continues to be forwarded (the flood rides alongside).
    """

    def __init__(
        self,
        factory: Callable[[int], Packet],
        out_port: int,
        rate_pps: float,
        name: str = "",
    ) -> None:
        super().__init__(name or "generator-flood")
        if rate_pps <= 0:
            raise ValueError("rate_pps must be positive")
        self.factory = factory
        self.out_port = out_port
        self.rate_pps = rate_pps
        self.generated = 0
        self._task: Optional[PeriodicTask] = None
        self._switch: Optional[OpenFlowSwitch] = None

    def attach(self, switch: OpenFlowSwitch) -> None:
        super().attach(switch)
        self._switch = switch

    def start(self, initial_delay: float = 0.0) -> None:
        if self._switch is None:
            raise RuntimeError("attach() the behaviour to a switch before start()")
        self._task = PeriodicTask(self._switch.sim, 1.0 / self.rate_pps, self._emit_one)
        self._task.start(initial_delay)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()

    def _emit_one(self) -> None:
        assert self._switch is not None
        packet = self.factory(self.generated)
        self.generated += 1
        self.emit(self._switch, packet, self.out_port)

    def handle(self, switch: OpenFlowSwitch, packet: Packet, in_port_no: int) -> bool:
        self.packets_seen += 1
        return self.forward_normally(switch, packet, in_port_no)


class BlackholeBehavior(AdversarialBehavior):
    """Drop everything (or a selected subset) — DoS by deletion.

    Distinct from :class:`~repro.adversary.modify.DropBehavior` in intent
    and default: a blackhole eats *all* traffic, modelling a dead or
    fully hostile device; against NetCo this surfaces as the
    router-unavailable alarm while traffic keeps flowing 2-of-3.
    """

    def __init__(self, selector: Optional[Selector] = None, name: str = "") -> None:
        super().__init__(name or "blackhole")
        self.selector = selector or match_all()
        self.swallowed = 0

    def handle(self, switch: OpenFlowSwitch, packet: Packet, in_port_no: int) -> bool:
        self.packets_seen += 1
        if self.selector(packet):
            self.swallowed += 1
            return True
        return self.forward_normally(switch, packet, in_port_no)
