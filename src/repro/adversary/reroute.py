"""Rerouting attack (threat 1): forward packets to the *wrong* port.

"An adversarial router can forward a packet to the wrong port (e.g.,
breaking logical isolations)" — the Figure 1 datacenter scenario, where
traffic that must pass the firewall is steered around it.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.adversary.behaviors import AdversarialBehavior, Selector, match_all
from repro.net.packet import Packet
from repro.openflow.switch import OpenFlowSwitch


class RerouteBehavior(AdversarialBehavior):
    """Send selected packets out ``wrong_port`` instead of their route."""

    def __init__(
        self,
        wrong_port: int,
        selector: Optional[Selector] = None,
        name: str = "",
    ) -> None:
        super().__init__(name or "reroute")
        self.wrong_port = wrong_port
        self.selector = selector or match_all()

    def handle(self, switch: OpenFlowSwitch, packet: Packet, in_port_no: int) -> bool:
        self.packets_seen += 1
        if not self.selector(packet):
            return self.forward_normally(switch, packet, in_port_no)
        self.trace_tamper(switch, "reroute", packet)
        self.emit(switch, packet, self.wrong_port)
        return True


class PortSwapBehavior(AdversarialBehavior):
    """Remap the correct egress port through a permutation.

    Models a subverted crossbar: the router computes the right forwarding
    decision, then the backdoor swaps output ports pairwise.
    """

    def __init__(self, port_map: Dict[int, int], name: str = "") -> None:
        super().__init__(name or "port-swap")
        self.port_map = dict(port_map)

    def handle(self, switch: OpenFlowSwitch, packet: Packet, in_port_no: int) -> bool:
        self.packets_seen += 1
        entry = switch.table.lookup(packet, in_port_no, switch.sim.now)
        if entry is None or not entry.actions:
            return False
        from repro.openflow.actions import Output

        packet = packet.copy()
        swapped = False
        for action in entry.actions:
            if isinstance(action, Output) and action.port in self.port_map:
                self.emit(switch, packet, self.port_map[action.port])
                swapped = True
            elif isinstance(action, Output):
                self.emit(switch, packet, action.port)
            else:
                action.apply(packet)
        if swapped:
            self.trace_tamper(switch, "port-swap", packet)
        return True
