"""Mirroring attack (threat 2): duplicate packets toward an exfiltration
point.

"An adversarial router can duplicate a packet, and e.g., send one to the
correct and one to an incorrect port."  The Section VI case study uses
exactly this: a malicious aggregation switch mirrors firewall-bound
packets to a core switch and, additionally, blackholes the victim's
return traffic.
"""

from __future__ import annotations

from typing import Optional

from repro.adversary.behaviors import AdversarialBehavior, Selector, match_all
from repro.net.packet import Packet
from repro.openflow.switch import OpenFlowSwitch


class MirrorBehavior(AdversarialBehavior):
    """Forward selected packets normally *and* copy them to ``mirror_port``."""

    def __init__(
        self,
        mirror_port: int,
        selector: Optional[Selector] = None,
        forward_original: bool = True,
        name: str = "",
    ) -> None:
        super().__init__(name or "mirror")
        self.mirror_port = mirror_port
        self.selector = selector or match_all()
        self.forward_original = forward_original
        self.mirrored = 0

    def handle(self, switch: OpenFlowSwitch, packet: Packet, in_port_no: int) -> bool:
        self.packets_seen += 1
        if not self.selector(packet):
            return self.forward_normally(switch, packet, in_port_no)
        self.trace_tamper(switch, "mirror", packet)
        self.emit(switch, packet, self.mirror_port)
        self.mirrored += 1
        if self.forward_original:
            self.forward_normally(switch, packet, in_port_no)
        return True


class MirrorAndDropBehavior(AdversarialBehavior):
    """The Section VI case-study attacker, in one behaviour.

    * packets matching ``mirror_selector`` are mirrored to ``mirror_port``
      (and still forwarded normally, so the attack stays stealthy);
    * packets matching ``drop_selector`` are silently discarded.
    """

    def __init__(
        self,
        mirror_port: int,
        mirror_selector: Selector,
        drop_selector: Selector,
        mirror_in_ports: Optional[frozenset] = None,
        name: str = "",
    ) -> None:
        super().__init__(name or "mirror-and-drop")
        self.mirror_port = mirror_port
        self.mirror_selector = mirror_selector
        self.drop_selector = drop_selector
        # Restrict mirroring to packets entering on these ports (e.g.
        # only the edge-facing side), so copies coming back from the
        # mirror target are not mirrored again in a loop.
        self.mirror_in_ports = mirror_in_ports
        self.mirrored = 0
        self.dropped = 0

    def handle(self, switch: OpenFlowSwitch, packet: Packet, in_port_no: int) -> bool:
        self.packets_seen += 1
        if self.drop_selector(packet):
            self.dropped += 1
            self.trace_tamper(switch, "drop", packet)
            return True
        if self.mirror_selector(packet) and (
            self.mirror_in_ports is None or in_port_no in self.mirror_in_ports
        ):
            self.mirrored += 1
            self.trace_tamper(switch, "mirror", packet)
            self.emit(switch, packet, self.mirror_port)
            self.forward_normally(switch, packet, in_port_no)
            return True
        return self.forward_normally(switch, packet, in_port_no)
