"""The adversarial-behaviour base class and selectors (Section II threat model).

A compromised router "can behave arbitrarily, e.g., completely ignore the
installed OpenFlow match-action rules".  We model this by attaching an
:class:`AdversarialBehavior` to an :class:`~repro.openflow.switch.
OpenFlowSwitch`; the behaviour runs *instead of* the normal match-action
pipeline.  This module holds only the base class, the selector factories
and the trivial :class:`BenignBehavior` / :class:`CompositeBehavior` —
the concrete attacks live in the sibling modules: ``dos`` (blackhole,
replay and generator floods), ``mirror`` (eavesdropping), ``modify``
(drop, header rewrite, payload corruption, packet fabrication),
``reroute`` (port swaps and detours), and ``strategies`` (scheduled,
stateful adversaries with their own rng streams).

Behaviours that only want to tamper with *some* packets use a selector
predicate and fall back to :meth:`AdversarialBehavior.forward_normally`,
which replays the switch's real pipeline — a stealthy attacker behaves
correctly most of the time.
"""

from __future__ import annotations

from typing import Callable, Iterable, List

from repro.net.addresses import IpAddress, MacAddress
from repro.net.packet import IP_PROTO_ICMP, IP_PROTO_TCP, IP_PROTO_UDP, Packet
from repro.openflow.switch import OpenFlowSwitch

Selector = Callable[[Packet], bool]


# ----------------------------------------------------------------------
# selector factories
# ----------------------------------------------------------------------
def match_all() -> Selector:
    return lambda packet: True


def match_none() -> Selector:
    return lambda packet: False


def match_dst_mac(mac: MacAddress) -> Selector:
    target = MacAddress(mac)
    return lambda packet: packet.eth.dst == target


def match_src_mac(mac: MacAddress) -> Selector:
    target = MacAddress(mac)
    return lambda packet: packet.eth.src == target


def match_dst_ip(ip: IpAddress) -> Selector:
    target = IpAddress(ip)
    return lambda packet: packet.ip is not None and packet.ip.dst == target


def match_proto(proto: int) -> Selector:
    return lambda packet: packet.ip is not None and packet.ip.proto == proto


def match_udp() -> Selector:
    return match_proto(IP_PROTO_UDP)


def match_tcp() -> Selector:
    return match_proto(IP_PROTO_TCP)


def match_icmp() -> Selector:
    return match_proto(IP_PROTO_ICMP)


def match_any_of(selectors: Iterable[Selector]) -> Selector:
    selector_list = list(selectors)
    return lambda packet: any(s(packet) for s in selector_list)


def match_all_of(selectors: Iterable[Selector]) -> Selector:
    selector_list = list(selectors)
    return lambda packet: all(s(packet) for s in selector_list)


# ----------------------------------------------------------------------
# behaviour base
# ----------------------------------------------------------------------
class AdversarialBehavior:
    """Base class.  Subclasses implement :meth:`handle`."""

    def __init__(self, name: str = "") -> None:
        self.name = name or type(self).__name__
        self.packets_seen = 0
        self.packets_tampered = 0

    def attach(self, switch: OpenFlowSwitch) -> None:
        """Install this behaviour on ``switch``."""
        switch.behavior = self

    def handle(self, switch: OpenFlowSwitch, packet: Packet, in_port_no: int) -> bool:
        """Decide the packet's fate.

        Returns True if the behaviour fully handled the packet (including
        the choice to drop it); False to fall through to the switch's
        normal pipeline.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # helpers for subclasses
    # ------------------------------------------------------------------
    @staticmethod
    def forward_normally(
        switch: OpenFlowSwitch, packet: Packet, in_port_no: int
    ) -> bool:
        """Run the switch's genuine match-action pipeline on the packet.

        Returns True if a rule forwarded it, False on table miss (the
        packet is dropped: an adversarial router has no controller to ask).
        """
        entry = switch.table.lookup(packet, in_port_no, switch.sim.now)
        if entry is None or not entry.actions:
            return False
        switch.apply_actions(packet, entry.actions, in_port_no)
        return True

    @staticmethod
    def emit(switch: OpenFlowSwitch, packet: Packet, out_port_no: int) -> None:
        """Send a packet out of a specific port, no questions asked."""
        port = switch.ports.get(out_port_no)
        if port is not None and port.is_wired:
            port.send(packet.copy())

    def trace_tamper(self, switch: OpenFlowSwitch, action: str, packet: Packet) -> None:
        self.packets_tampered += 1
        switch.trace("adversary.tamper", behavior=self.name, action=action, packet=packet)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(seen={self.packets_seen}, tampered={self.packets_tampered})"


class BenignBehavior(AdversarialBehavior):
    """A 'compromised' router that currently behaves perfectly.

    Useful as a control in experiments and to model a dormant implant.
    """

    def handle(self, switch: OpenFlowSwitch, packet: Packet, in_port_no: int) -> bool:
        self.packets_seen += 1
        return self.forward_normally(switch, packet, in_port_no)


class CompositeBehavior(AdversarialBehavior):
    """Chain several behaviours; the first that handles a packet wins."""

    def __init__(self, behaviors: List[AdversarialBehavior], name: str = "") -> None:
        super().__init__(name or "composite")
        self.behaviors = list(behaviors)

    def handle(self, switch: OpenFlowSwitch, packet: Packet, in_port_no: int) -> bool:
        self.packets_seen += 1
        for behavior in self.behaviors:
            if behavior.handle(switch, packet, in_port_no):
                return True
        return False
