"""Adversarial router models for the NetCo threat model."""

from repro.adversary.behaviors import (
    AdversarialBehavior,
    BenignBehavior,
    CompositeBehavior,
    Selector,
    match_all,
    match_all_of,
    match_any_of,
    match_dst_ip,
    match_dst_mac,
    match_icmp,
    match_none,
    match_proto,
    match_src_mac,
    match_tcp,
    match_udp,
)
from repro.adversary.dos import (
    BlackholeBehavior,
    GeneratorFloodBehavior,
    ReplayFloodBehavior,
)
from repro.adversary.mirror import MirrorAndDropBehavior, MirrorBehavior
from repro.adversary.modify import (
    DropBehavior,
    HeaderRewriteBehavior,
    PacketInjectionBehavior,
    PayloadCorruptionBehavior,
    dst_mac_rewrite,
    vlan_rewrite,
)
from repro.adversary.reroute import PortSwapBehavior, RerouteBehavior

__all__ = [
    "AdversarialBehavior",
    "BenignBehavior",
    "CompositeBehavior",
    "Selector",
    "match_all",
    "match_all_of",
    "match_any_of",
    "match_dst_ip",
    "match_dst_mac",
    "match_icmp",
    "match_none",
    "match_proto",
    "match_src_mac",
    "match_tcp",
    "match_udp",
    "BlackholeBehavior",
    "GeneratorFloodBehavior",
    "ReplayFloodBehavior",
    "MirrorAndDropBehavior",
    "MirrorBehavior",
    "DropBehavior",
    "HeaderRewriteBehavior",
    "PacketInjectionBehavior",
    "PayloadCorruptionBehavior",
    "dst_mac_rewrite",
    "vlan_rewrite",
    "PortSwapBehavior",
    "RerouteBehavior",
]
