"""Scheduled, stateful adversary strategies (ROADMAP item 4).

The static behaviours in the sibling modules (``dos`` / ``mirror`` /
``modify`` / ``reroute``) misbehave from the moment they are attached.
The strategies here model *intelligent* attackers drawn from the related
work — SDNsec-style path inconsistency, trajectory-sampling-grade
probabilistic corruption, probation-window evasion, vote-sweep timing,
and colluding minorities — as :class:`ScheduledStrategy` behaviours that
the chaos engine can activate mid-run (``adversary_strategy`` events).

Each strategy draws from its own named rng stream, and the ones that key
off the trusted element's internal cadence subscribe to the hooks the
compare exposes for exactly this purpose:
:meth:`~repro.core.compare.CompareCore.add_sweep_listener` (expiry-sweep
ticks) and
:meth:`~repro.core.membership.QuorumMembershipMixin.add_membership_listener`
(quarantine / re-admission transitions).

Every tampered packet is counted on the
``adversary_packets_tampered_total{strategy}`` metric and total active
time on ``adversary_active_seconds{strategy}``; both bind from the
registry active at construction time and are ``None`` when metrics are
disabled, so the hot path pays a single ``is not None`` test.
"""

from __future__ import annotations

from typing import Dict, Optional, Type

from repro.adversary.behaviors import AdversarialBehavior
from repro.net.packet import Packet
from repro.obs.metrics import active_registry
from repro.openflow.switch import OpenFlowSwitch

__all__ = [
    "STRATEGIES",
    "CollusionCorruption",
    "PathInconsistency",
    "ProbationEvader",
    "SampledCorruption",
    "ScheduledStrategy",
    "SweepTimedCorruption",
    "build_strategy",
    "corrupt_payload",
]


def corrupt_payload(packet: Packet, offset: int = 0) -> Packet:
    """The canonical wrong wire image: XOR 0xFF into one payload byte.

    Deterministic in the input packet, so two colluding branches that
    apply it independently emit *identical* corrupt copies without any
    coordination channel — the worst case for a bit-exact voter.
    """
    mutated = packet.copy()
    data = bytearray(mutated.payload)
    data[offset % len(data)] ^= 0xFF
    mutated.payload = bytes(data)
    return mutated


class ScheduledStrategy(AdversarialBehavior):
    """Base class: a chaos-schedulable behaviour with a strategy callback.

    Subclasses implement :meth:`decide`; when it returns True the packet
    is tampered with (default: the canonical payload corruption), when
    False the switch's genuine pipeline runs.  The chaos engine calls
    :meth:`activate` when the ``adversary_strategy`` event fires and
    :meth:`deactivate` when the campaign ends (``until`` / behavior_off),
    which is where compare-hook subscriptions live and active time is
    accounted.
    """

    #: registry name; also the ``strategy`` metric label
    STRATEGY = ""
    #: fail at arm() time when no compare core was handed to the engine
    requires_compare = False
    #: fail at arm() time when the target is not a recognisable branch
    requires_branch = False

    def __init__(
        self,
        sim,
        rng,
        compare=None,
        branch: Optional[int] = None,
        rate: float = 1.0,
        pace: int = 1,
        window: float = 0.0,
        name: str = "",
    ) -> None:
        super().__init__(name or self.STRATEGY)
        if self.requires_compare and compare is None:
            raise ValueError(
                f"{self.STRATEGY}: strategy needs the compare core's hooks; "
                "hand compare_core= to the ChaosEngine"
            )
        if self.requires_branch and branch is None:
            raise ValueError(
                f"{self.STRATEGY}: strategy needs a branch index; target a "
                "switch aliased or named r<i>"
            )
        self.sim = sim
        self.rng = rng
        self.compare = compare
        self.branch = branch
        self.rate = rate
        self.pace = pace
        self.window = window
        #: sim time of the current activation, None while dormant
        self.activated_at: Optional[float] = None
        #: accumulated active sim time over completed activations
        self.active_seconds = 0.0
        registry = active_registry()
        if registry.enabled:
            self._c_tampered = registry.counter(
                "adversary_packets_tampered_total",
                "packets tampered by a scheduled adversary strategy",
                labelnames=("strategy",),
            ).labels(self.STRATEGY)
            self._g_active = registry.gauge(
                "adversary_active_seconds",
                "sim time scheduled adversary strategies have been active",
                labelnames=("strategy",),
            ).labels(self.STRATEGY)
        else:
            self._c_tampered = None
            self._g_active = None

    # -- lifecycle (driven by the chaos engine) -------------------------
    def activate(self) -> None:
        if self.activated_at is None:
            self.activated_at = self.sim.now

    def deactivate(self) -> None:
        if self.activated_at is None:
            return
        elapsed = self.sim.now - self.activated_at
        self.activated_at = None
        self.active_seconds += elapsed
        if self._g_active is not None:
            self._g_active.inc(elapsed)

    # -- the hot path ---------------------------------------------------
    def handle(self, switch: OpenFlowSwitch, packet: Packet, in_port_no: int) -> bool:
        self.packets_seen += 1
        if self.decide(packet, self.sim.now):
            return self.tamper(switch, packet, in_port_no)
        return self.forward_normally(switch, packet, in_port_no)

    def decide(self, packet: Packet, now: float) -> bool:
        """The strategy callback: lie about this packet?"""
        raise NotImplementedError

    def tamper(self, switch: OpenFlowSwitch, packet: Packet, in_port_no: int) -> bool:
        """Forward a corrupted copy (subclasses may override the mutation)."""
        if not packet.payload:
            return self.forward_normally(switch, packet, in_port_no)
        mutated = corrupt_payload(packet)
        self.trace_tamper(switch, "corrupt", mutated)
        self.forward_normally(switch, mutated, in_port_no)
        return True

    def trace_tamper(self, switch: OpenFlowSwitch, action: str, packet: Packet) -> None:
        super().trace_tamper(switch, action, packet)
        if self._c_tampered is not None:
            self._c_tampered.inc()

    def _sample(self) -> bool:
        """One Bernoulli(rate) draw from this strategy's own stream."""
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        return self.rng.random() < self.rate


class SampledCorruption(ScheduledStrategy):
    """Probabilistically-sampled corruption at rate p.

    The adversary class a trajectory-sampling monitor is built against
    (Software-Defined Adversarial Trajectory Sampling): each packet is
    independently corrupted with probability ``rate``, so at p = 0.001
    the evidence trickles in far below any per-window threshold.
    """

    STRATEGY = "sampled_corruption"

    def decide(self, packet: Packet, now: float) -> bool:
        return self._sample()


class CollusionCorruption(SampledCorruption):
    """A colluding branch: emits the canonical corrupt image, always.

    Schedule it on m branches and all m deliver byte-identical wrong
    copies (see :func:`corrupt_payload`) — below quorum the voter must
    still mask every one; at quorum the wrong image *wins* the vote,
    which the advbench suite keeps as its negative control.
    """

    STRATEGY = "colluding_minority"


class PathInconsistency(ScheduledStrategy):
    """SDNsec-style path-inconsistency / reroute attack.

    Every ``pace``-th packet is forwarded as if it had silently traversed
    an extra hop: one extra TTL decrement, payload untouched.  A
    forwarding-accountability scheme would catch the path digest
    mismatch; here the bit-exact voter sees a divergent header and the
    honest quorum outvotes it.  The rng stream only picks the phase, so
    the wire images stay deterministic per seed.
    """

    STRATEGY = "path_inconsistency"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._count = 0
        self._phase = int(self.rng.random() * self.pace) % self.pace if self.pace > 1 else 0

    def decide(self, packet: Packet, now: float) -> bool:
        selected = self._count % self.pace == self._phase
        self._count += 1
        return selected

    def tamper(self, switch: OpenFlowSwitch, packet: Packet, in_port_no: int) -> bool:
        mutated = packet.copy()
        mutated.decrement_ttl()
        self.trace_tamper(switch, "reroute", mutated)
        self.forward_normally(switch, mutated, in_port_no)
        return True


class SweepTimedCorruption(ScheduledStrategy):
    """Selective modification timed against the compare's vote sweeps.

    Subscribes to the compare's expiry-sweep tick and only lies inside
    the ``window`` right after a sweep fired — a freshly created
    divergent entry then sits a full buffer timeout away from the sweep
    that would expire it, so the single-source evidence surfaces as late
    as the cadence allows.  ``window`` defaults to half the sweep period.
    """

    STRATEGY = "sweep_timed"
    requires_compare = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if self.window <= 0.0:
            self.window = 0.5 * float(self.compare.config.buffer_timeout)
        self._last_sweep: Optional[float] = None

    def activate(self) -> None:
        super().activate()
        self.compare.add_sweep_listener(self._on_sweep)

    def deactivate(self) -> None:
        super().deactivate()
        self.compare.remove_sweep_listener(self._on_sweep)

    def _on_sweep(self, now: float) -> None:
        self._last_sweep = now

    def decide(self, packet: Packet, now: float) -> bool:
        if self._last_sweep is None or now - self._last_sweep > self.window:
            return False
        return self._sample()


class ProbationEvader(ScheduledStrategy):
    """Lie pacing that goes quiet inside the quarantine probation window.

    Lies continuously until the compare quarantines its own branch, then
    serves probation as a model citizen — clean copies are probation's
    currency, so behaving earns re-admission at full speed — and resumes
    lying the moment it is back in the vote.  ``pace`` > 1 additionally
    paces the lies while active; ``rate`` < 1 subsamples them.
    """

    STRATEGY = "probation_evader"
    requires_compare = True
    requires_branch = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._lying = True
        self._count = 0
        #: quarantine -> quiet transitions (evasions served)
        self.evasions = 0
        #: re-admission -> lying-again transitions
        self.resumptions = 0

    def activate(self) -> None:
        super().activate()
        self.compare.add_membership_listener(self._on_membership)

    def deactivate(self) -> None:
        super().deactivate()
        self.compare.remove_membership_listener(self._on_membership)

    def _on_membership(self, event: str, branch: int, now: float) -> None:
        if branch != self.branch:
            return
        if event == "quarantine" and self._lying:
            self._lying = False
            self.evasions += 1
        elif event == "readmit" and not self._lying:
            self._lying = True
            self.resumptions += 1

    def decide(self, packet: Packet, now: float) -> bool:
        if not self._lying:
            return False
        self._count += 1
        if self.pace > 1 and self._count % self.pace:
            return False
        return self._sample()


#: strategy name -> class, for schedule validation and construction
STRATEGIES: Dict[str, Type[ScheduledStrategy]] = {
    cls.STRATEGY: cls
    for cls in (
        SampledCorruption,
        CollusionCorruption,
        PathInconsistency,
        SweepTimedCorruption,
        ProbationEvader,
    )
}


def build_strategy(
    strategy: str,
    sim,
    rng,
    compare=None,
    branch: Optional[int] = None,
    rate: float = 1.0,
    pace: int = 1,
    window: float = 0.0,
) -> ScheduledStrategy:
    """Instantiate a registered strategy (raises on unknown names)."""
    cls = STRATEGIES.get(strategy)
    if cls is None:
        raise ValueError(
            f"unknown adversary strategy {strategy!r} (known: {sorted(STRATEGIES)})"
        )
    return cls(
        sim=sim, rng=rng, compare=compare, branch=branch,
        rate=rate, pace=pace, window=window,
    )
