"""Packet-modification attacks (threat 3): delete, rewrite or fabricate.

"An adversarial router can also delete packets, generate new packets, or
modify the header or payload of packets (e.g., changing the VLAN field
to break isolation domains)."
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.adversary.behaviors import AdversarialBehavior, Selector, match_all
from repro.net.addresses import MacAddress
from repro.net.packet import Packet, Vlan
from repro.openflow.switch import OpenFlowSwitch
from repro.sim import PeriodicTask


class DropBehavior(AdversarialBehavior):
    """Silently delete selected packets (possibly probabilistically)."""

    def __init__(
        self,
        selector: Optional[Selector] = None,
        drop_probability: float = 1.0,
        rng=None,
        name: str = "",
    ) -> None:
        super().__init__(name or "drop")
        self.selector = selector or match_all()
        self.drop_probability = drop_probability
        self._rng = rng
        self.dropped = 0

    def handle(self, switch: OpenFlowSwitch, packet: Packet, in_port_no: int) -> bool:
        self.packets_seen += 1
        if self.selector(packet):
            roll = 0.0 if self._rng is None else self._rng.random()
            if roll < self.drop_probability:
                self.dropped += 1
                self.trace_tamper(switch, "drop", packet)
                return True
        return self.forward_normally(switch, packet, in_port_no)


class HeaderRewriteBehavior(AdversarialBehavior):
    """Apply an arbitrary header mutation, then forward along the route
    the *mutated* packet would take (the rewrite is the routing attack)."""

    def __init__(
        self,
        mutate: Callable[[Packet], None],
        selector: Optional[Selector] = None,
        name: str = "",
    ) -> None:
        super().__init__(name or "header-rewrite")
        self.mutate = mutate
        self.selector = selector or match_all()

    def handle(self, switch: OpenFlowSwitch, packet: Packet, in_port_no: int) -> bool:
        self.packets_seen += 1
        if not self.selector(packet):
            return self.forward_normally(switch, packet, in_port_no)
        mutated = packet.copy()
        self.mutate(mutated)
        self.trace_tamper(switch, "rewrite", mutated)
        self.forward_normally(switch, mutated, in_port_no)
        return True


def vlan_rewrite(vid: int) -> Callable[[Packet], None]:
    """Mutator: move the packet into VLAN ``vid`` (isolation break)."""

    def mutate(packet: Packet) -> None:
        if packet.vlan is None:
            packet.vlan = Vlan(vid)
        else:
            packet.vlan.vid = vid

    return mutate


def dst_mac_rewrite(mac: MacAddress) -> Callable[[Packet], None]:
    """Mutator: retarget the packet at a different station."""
    target = MacAddress(mac)

    def mutate(packet: Packet) -> None:
        packet.eth.dst = target

    return mutate


class PayloadCorruptionBehavior(AdversarialBehavior):
    """Flip bytes in the payload of selected packets and forward them.

    Against a bit-exact compare the corrupted copy loses the vote; against
    a header-only compare it slips through — the policy ablation measures
    exactly this.
    """

    def __init__(
        self,
        selector: Optional[Selector] = None,
        flip_offset: int = 0,
        name: str = "",
    ) -> None:
        super().__init__(name or "payload-corrupt")
        self.selector = selector or match_all()
        self.flip_offset = flip_offset
        self.corrupted = 0

    def handle(self, switch: OpenFlowSwitch, packet: Packet, in_port_no: int) -> bool:
        self.packets_seen += 1
        if not self.selector(packet) or not packet.payload:
            return self.forward_normally(switch, packet, in_port_no)
        mutated = packet.copy()
        offset = self.flip_offset % len(mutated.payload)
        corrupted = bytearray(mutated.payload)
        corrupted[offset] ^= 0xFF
        mutated.payload = bytes(corrupted)
        self.corrupted += 1
        self.trace_tamper(switch, "corrupt", mutated)
        self.forward_normally(switch, mutated, in_port_no)
        return True


class PacketInjectionBehavior(AdversarialBehavior):
    """Fabricate unsolicited packets on a timer ("crafting packets
    unsolicited" in Section IV, case 1).

    Forwards real traffic normally; separately injects ``factory()``
    packets out ``inject_port`` every ``period`` seconds once started.
    """

    def __init__(
        self,
        factory: Callable[[int], Packet],
        inject_port: int,
        period: float,
        name: str = "",
    ) -> None:
        super().__init__(name or "inject")
        self.factory = factory
        self.inject_port = inject_port
        self.period = period
        self.injected = 0
        self._task: Optional[PeriodicTask] = None
        self._switch: Optional[OpenFlowSwitch] = None

    def attach(self, switch: OpenFlowSwitch) -> None:
        super().attach(switch)
        self._switch = switch

    def start(self, initial_delay: float = 0.0) -> None:
        if self._switch is None:
            raise RuntimeError("attach() the behaviour to a switch before start()")
        self._task = PeriodicTask(self._switch.sim, self.period, self._inject)
        self._task.start(initial_delay)

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()

    def _inject(self) -> None:
        assert self._switch is not None
        packet = self.factory(self.injected)
        self.injected += 1
        self.trace_tamper(self._switch, "inject", packet)
        self.emit(self._switch, packet, self.inject_port)

    def handle(self, switch: OpenFlowSwitch, packet: Packet, in_port_no: int) -> bool:
        self.packets_seen += 1
        return self.forward_normally(switch, packet, in_port_no)
