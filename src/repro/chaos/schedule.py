"""Declarative, deterministic fault schedules.

A :class:`FaultSchedule` is a sorted list of typed fault events — link
cuts, Gilbert–Elliott loss bursts, bandwidth brownouts, router crashes
with flow-table wipe, and mid-run adversary behaviour activation.  The
:class:`ChaosEngine` compiles a schedule onto an existing
:class:`~repro.net.topology.Network` via ``Simulator.schedule_at``;
every random draw a fault needs (burst loss) comes from a named RNG
stream derived from the network's master seed, so a chaos run is exactly
as bit-reproducible as a fault-free one.

Schedules serialise to/from JSON so they can be checked in under
``examples/`` and passed to the experiment CLI as ``--chaos spec.json``::

    {
      "name": "crash_central3",
      "events": [
        {"kind": "router_crash", "time": 0.01, "target": "r1",
         "restart_at": 0.025}
      ]
    }

Targets are node names, link names (``"<a>-<b>"`` as assigned by
``Network.connect``), or aliases supplied by the scenario (the Central3
runner maps ``r0..r2`` to ``nc_r0..nc_r2``).
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass, fields
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Type

from repro.adversary import (
    BenignBehavior,
    BlackholeBehavior,
    DropBehavior,
    PayloadCorruptionBehavior,
)
from repro.adversary.strategies import STRATEGIES, ScheduledStrategy, build_strategy
from repro.ctrl.replicated import CTRL_STRATEGIES
from repro.net.link import Link
from repro.net.topology import Network
from repro.obs.metrics import active_registry
from repro.openflow.switch import OpenFlowSwitch

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.compare import CompareCore
    from repro.ctrl.replicated import ReplicatedControlPlane


# ----------------------------------------------------------------------
# typed events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultEvent:
    """Base class: one fault applied to one target at one sim time."""

    KIND = ""

    time: float
    target: str

    def validate(self) -> None:
        if self.time < 0.0:
            raise ValueError(f"{self.KIND}: negative time {self.time}")
        if not self.target:
            raise ValueError(f"{self.KIND}: empty target")


@dataclass(frozen=True)
class LinkDown(FaultEvent):
    """Cut a link; ``until`` (optional) schedules the matching repair."""

    KIND = "link_down"

    until: Optional[float] = None

    def validate(self) -> None:
        super().validate()
        if self.until is not None and self.until <= self.time:
            raise ValueError(f"{self.KIND}: until {self.until} <= time {self.time}")


@dataclass(frozen=True)
class LinkUp(FaultEvent):
    """Repair a previously cut link."""

    KIND = "link_up"


@dataclass(frozen=True)
class LossBurst(FaultEvent):
    """Install a Gilbert–Elliott loss model on a link until ``until``.

    The two-state Markov chain (good/bad) produces the bursty loss real
    radio or congested links show, which independent Bernoulli draws
    cannot; parameters follow the classic Gilbert–Elliott formulation.
    """

    KIND = "loss_burst"

    until: float = 0.0
    p_good_to_bad: float = 0.05
    p_bad_to_good: float = 0.25
    loss_good: float = 0.0
    loss_bad: float = 0.8

    def validate(self) -> None:
        super().validate()
        if self.until <= self.time:
            raise ValueError(f"{self.KIND}: until {self.until} <= time {self.time}")
        for name in ("p_good_to_bad", "p_bad_to_good", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.KIND}: {name}={value} out of [0, 1]")


@dataclass(frozen=True)
class BandwidthDegrade(FaultEvent):
    """Scale a link's rate by ``factor``; restore at ``until`` if given."""

    KIND = "bandwidth"

    factor: float = 0.5
    until: Optional[float] = None

    def validate(self) -> None:
        super().validate()
        if self.factor <= 0.0:
            raise ValueError(f"{self.KIND}: factor must be positive, got {self.factor}")
        if self.until is not None and self.until <= self.time:
            raise ValueError(f"{self.KIND}: until {self.until} <= time {self.time}")


@dataclass(frozen=True)
class RouterCrash(FaultEvent):
    """Crash a switch (drops everything, wipes soft state).

    ``restart_at`` schedules the matching :class:`RouterRestart`;
    ``restore_flows`` then models the operator re-provisioning routes.
    """

    KIND = "router_crash"

    wipe_flows: bool = True
    restart_at: Optional[float] = None
    restore_flows: bool = True

    def validate(self) -> None:
        super().validate()
        if self.restart_at is not None and self.restart_at <= self.time:
            raise ValueError(
                f"{self.KIND}: restart_at {self.restart_at} <= time {self.time}"
            )


@dataclass(frozen=True)
class RouterRestart(FaultEvent):
    """Bring a crashed switch back up."""

    KIND = "router_restart"

    restore_flows: bool = True


@dataclass(frozen=True)
class BehaviorOn(FaultEvent):
    """Turn a switch adversarial mid-run (compromise at time t)."""

    KIND = "behavior"

    behavior: str = "blackhole"
    until: Optional[float] = None

    def validate(self) -> None:
        super().validate()
        if self.behavior not in BEHAVIOR_FACTORIES:
            raise ValueError(
                f"{self.KIND}: unknown behavior {self.behavior!r} "
                f"(known: {sorted(BEHAVIOR_FACTORIES)})"
            )
        if self.until is not None and self.until <= self.time:
            raise ValueError(f"{self.KIND}: until {self.until} <= time {self.time}")


@dataclass(frozen=True)
class BehaviorOff(FaultEvent):
    """Restore the pre-compromise behavior of a switch."""

    KIND = "behavior_off"


@dataclass(frozen=True)
class AdversaryStrategy(FaultEvent):
    """Activate a scheduled, stateful adversary strategy on a switch.

    Unlike :class:`BehaviorOn`'s static behaviours, a strategy from
    ``repro.adversary.strategies`` is built per activation with its own
    named rng stream and, when it needs them, the compare core's
    probation / sweep hooks (hand ``compare_core=`` to the engine).
    ``until`` restores the pre-compromise behaviour and credits the
    strategy's active time.  Branch binding: an explicit ``branch`` field
    wins; otherwise a target aliased or named ``r<i>`` binds the strategy
    to branch ``i``.  A strategy that requires a branch fails at arm time
    (with the target named) when neither is available.
    """

    KIND = "adversary_strategy"

    strategy: str = "sampled_corruption"
    rate: float = 1.0
    pace: int = 1
    window: float = 0.0
    until: Optional[float] = None
    branch: Optional[int] = None

    def validate(self) -> None:
        super().validate()
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"{self.KIND}: unknown strategy {self.strategy!r} "
                f"(known: {sorted(STRATEGIES)})"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"{self.KIND}: rate={self.rate} out of [0, 1]")
        if self.pace < 1:
            raise ValueError(f"{self.KIND}: pace must be >= 1, got {self.pace}")
        if self.window < 0.0:
            raise ValueError(f"{self.KIND}: negative window {self.window}")
        if self.until is not None and self.until <= self.time:
            raise ValueError(f"{self.KIND}: until {self.until} <= time {self.time}")
        if self.branch is not None and self.branch < 0:
            raise ValueError(f"{self.KIND}: branch must be >= 0, got {self.branch}")


@dataclass(frozen=True)
class ControllerCrash(FaultEvent):
    """Fail-stop one control-plane replica (target: ``c<i>`` or name).

    ``restart_at`` schedules the matching :class:`ControllerRestart`; the
    restarted replica's app state is stale, so the voter masks (and, if
    persistent, quarantines) its post-restart divergence.
    """

    KIND = "controller_crash"

    restart_at: Optional[float] = None

    def validate(self) -> None:
        super().validate()
        if self.restart_at is not None and self.restart_at <= self.time:
            raise ValueError(
                f"{self.KIND}: restart_at {self.restart_at} <= time {self.time}"
            )


@dataclass(frozen=True)
class ControllerRestart(FaultEvent):
    """Bring a crashed control-plane replica back up."""

    KIND = "controller_restart"


@dataclass(frozen=True)
class ControllerCompromise(FaultEvent):
    """Turn one control-plane replica into a liar (modified flow-mods).

    ``lie_every`` > 1 paces the lies (an adversary timing itself against
    the probation window); ``until`` ends the campaign.
    """

    KIND = "controller_compromise"

    strategy: str = "blackhole"
    lie_every: int = 1
    until: Optional[float] = None

    def validate(self) -> None:
        super().validate()
        if self.strategy not in CTRL_STRATEGIES:
            raise ValueError(
                f"{self.KIND}: unknown strategy {self.strategy!r} "
                f"(known: {sorted(CTRL_STRATEGIES)})"
            )
        if self.lie_every < 1:
            raise ValueError(f"{self.KIND}: lie_every must be >= 1, got {self.lie_every}")
        if self.until is not None and self.until <= self.time:
            raise ValueError(f"{self.KIND}: until {self.until} <= time {self.time}")


@dataclass(frozen=True)
class ControllerRestore(FaultEvent):
    """End a replica compromise (it tells the truth again)."""

    KIND = "controller_restore"


#: JSON ``kind`` string -> event class
EVENT_KINDS: Dict[str, Type[FaultEvent]] = {
    cls.KIND: cls
    for cls in (
        LinkDown,
        LinkUp,
        LossBurst,
        BandwidthDegrade,
        RouterCrash,
        RouterRestart,
        BehaviorOn,
        BehaviorOff,
        AdversaryStrategy,
        ControllerCrash,
        ControllerRestart,
        ControllerCompromise,
        ControllerRestore,
    )
}

#: behaviour name -> zero-arg factory, for JSON-declared compromises
BEHAVIOR_FACTORIES: Dict[str, Callable[[], object]] = {
    "blackhole": BlackholeBehavior,
    "payload_corruption": PayloadCorruptionBehavior,
    "drop": DropBehavior,
    "benign": BenignBehavior,
}


# ----------------------------------------------------------------------
# schedule container
# ----------------------------------------------------------------------
class FaultSchedule:
    """An ordered, validated collection of fault events."""

    def __init__(self, events: Sequence[FaultEvent] = (), name: str = "chaos") -> None:
        self.name = name
        # Stable sort by time: simultaneous events keep authoring order,
        # and the simulator breaks ties FIFO, so execution order is fixed.
        self.events: List[FaultEvent] = sorted(events, key=lambda e: e.time)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def validate(self) -> None:
        for event in self.events:
            event.validate()

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> dict:
        records = []
        for event in self.events:
            record = {"kind": event.KIND}
            record.update(
                (k, v) for k, v in sorted(asdict(event).items()) if v is not None
            )
            records.append(record)
        return {"name": self.name, "events": records}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSchedule":
        events: List[FaultEvent] = []
        for record in data.get("events", []):
            record = dict(record)
            kind = record.pop("kind", None)
            event_cls = EVENT_KINDS.get(kind)
            if event_cls is None:
                raise ValueError(
                    f"unknown fault kind {kind!r} (known: {sorted(EVENT_KINDS)})"
                )
            allowed = {f.name for f in fields(event_cls)}
            unknown = set(record) - allowed
            if unknown:
                raise ValueError(
                    f"{kind}: unknown field(s) {sorted(unknown)} "
                    f"(allowed: {sorted(allowed)})"
                )
            events.append(event_cls(**record))
        schedule = cls(events, name=data.get("name", "chaos"))
        schedule.validate()
        return schedule

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_json_file(cls, path: str) -> "FaultSchedule":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def __repr__(self) -> str:
        return f"FaultSchedule({self.name!r}, events={len(self.events)})"


# ----------------------------------------------------------------------
# Gilbert–Elliott loss model
# ----------------------------------------------------------------------
class GilbertElliottLoss:
    """Two-state Markov (Gilbert–Elliott) per-packet loss decision.

    Each call advances the chain one step, then draws loss at the
    current state's rate.  All randomness comes from the single ``rng``
    handed in (a named stream), so installing the model never perturbs
    any other stream's sequence.
    """

    def __init__(
        self,
        rng,
        p_good_to_bad: float,
        p_bad_to_good: float,
        loss_good: float = 0.0,
        loss_bad: float = 0.8,
    ) -> None:
        self._rng = rng
        self._p_gb = p_good_to_bad
        self._p_bg = p_bad_to_good
        self._loss_good = loss_good
        self._loss_bad = loss_bad
        self.bad = False

    def __call__(self) -> bool:
        if self.bad:
            if self._rng.random() < self._p_bg:
                self.bad = False
        elif self._rng.random() < self._p_gb:
            self.bad = True
        loss = self._loss_bad if self.bad else self._loss_good
        if loss <= 0.0:
            return False
        if loss >= 1.0:
            return True
        return self._rng.random() < loss


# ----------------------------------------------------------------------
# engine
# ----------------------------------------------------------------------
class ChaosEngine:
    """Compiles a :class:`FaultSchedule` onto a live :class:`Network`.

    Targets are resolved at :meth:`arm` time (misspelled names fail
    before the run starts, not mid-simulation).  Every applied fault is
    appended to :attr:`injections` and emitted as a ``chaos.<kind>``
    trace record, so RunReports carry the fault timeline.
    """

    def __init__(
        self,
        schedule: FaultSchedule,
        network: Network,
        aliases: Optional[Dict[str, str]] = None,
        control_plane: Optional["ReplicatedControlPlane"] = None,
        compare_core: Optional["CompareCore"] = None,
    ) -> None:
        self.schedule = schedule
        self.network = network
        self.aliases = dict(aliases or {})
        #: target of controller_* events; None = such events are an error
        self.control_plane = control_plane
        #: hook source for adversary_strategy events that need the
        #: compare's sweep / probation cadence; optional otherwise
        self.compare_core = compare_core
        #: switch name -> the ScheduledStrategy armed on it (so runners
        #: can read per-strategy tamper counts after the run)
        self.strategy_behaviors: Dict[str, ScheduledStrategy] = {}
        #: applied faults, in injection order: dicts of time/kind/target
        self.injections: List[dict] = []
        self._links_by_name = {link.name: link for link in network.links}
        # pre-compromise behaviors, for behavior_off restoration
        self._saved_behaviors: Dict[str, object] = {}
        # original per-direction rates, for bandwidth restoration
        self._saved_rates: Dict[str, tuple] = {}
        registry = active_registry()
        self._c_faults = (
            registry.counter(
                "chaos_faults_injected_total",
                "fault events applied by the chaos engine",
                labelnames=("kind",),
            )
            if registry.enabled
            else None
        )
        self._armed = False

    # -- target resolution ---------------------------------------------
    def resolve_link(self, target: str) -> Link:
        name = self.aliases.get(target, target)
        link = self._links_by_name.get(name)
        if link is None:
            raise ValueError(
                f"no link named {name!r} (target {target!r}); "
                f"known: {sorted(self._links_by_name)}"
            )
        return link

    def resolve_switch(self, target: str) -> OpenFlowSwitch:
        name = self.aliases.get(target, target)
        node = self.network.nodes.get(name)
        if node is None:
            raise ValueError(
                f"no node named {name!r} (target {target!r}); "
                f"known: {sorted(self.network.nodes)}"
            )
        if not isinstance(node, OpenFlowSwitch):
            raise ValueError(f"node {name!r} is not a switch")
        return node

    def resolve_replica(self, target: str) -> int:
        if self.control_plane is None:
            raise ValueError(
                f"controller fault targets {target!r} but no control plane "
                "was handed to the chaos engine"
            )
        name = self.aliases.get(target, target)
        return self.control_plane.replica_index(name)

    # -- compilation ----------------------------------------------------
    def arm(self) -> None:
        """Validate, resolve and schedule every event (call once)."""
        if self._armed:
            raise RuntimeError("chaos engine already armed")
        self._armed = True
        self.schedule.validate()
        sim = self.network.sim
        for event in self.schedule.events:
            apply = self._compile(event)  # resolves targets: fails fast
            sim.schedule_at(event.time, apply)

    def _compile(self, event: FaultEvent) -> Callable[[], None]:
        kind = event.KIND
        if kind in ("link_down", "link_up"):
            link = self.resolve_link(event.target)
            action = link.fail if kind == "link_down" else link.recover
            fn = lambda: action()  # noqa: E731
            if kind == "link_down" and event.until is not None:
                self.network.sim.schedule_at(
                    event.until, self._compile(LinkUp(event.until, event.target))
                )
        elif kind == "loss_burst":
            link = self.resolve_link(event.target)
            stream = self.network.rng.stream(
                f"chaos.{self.schedule.name}.{link.name}.gilbert_elliott"
            )
            model = GilbertElliottLoss(
                stream,
                p_good_to_bad=event.p_good_to_bad,
                p_bad_to_good=event.p_bad_to_good,
                loss_good=event.loss_good,
                loss_bad=event.loss_bad,
            )
            fn = lambda: link.set_loss_model(model)  # noqa: E731
            self.network.sim.schedule_at(event.until, lambda: link.set_loss_model(None))
        elif kind == "bandwidth":
            link = self.resolve_link(event.target)

            def fn() -> None:
                self._saved_rates.setdefault(link.name, link.rates_bps())
                link.scale_rate(event.factor)

            if event.until is not None:
                self.network.sim.schedule_at(
                    event.until, lambda: self._restore_rate(link)
                )
        elif kind == "router_crash":
            switch = self.resolve_switch(event.target)
            fn = lambda: switch.fail(wipe_flows=event.wipe_flows)  # noqa: E731
            if event.restart_at is not None:
                self.network.sim.schedule_at(
                    event.restart_at,
                    self._compile(
                        RouterRestart(
                            event.restart_at, event.target, event.restore_flows
                        )
                    ),
                )
        elif kind == "router_restart":
            switch = self.resolve_switch(event.target)
            fn = lambda: switch.recover(restore_flows=event.restore_flows)  # noqa: E731
        elif kind == "behavior":
            switch = self.resolve_switch(event.target)
            behavior = BEHAVIOR_FACTORIES[event.behavior]()

            def fn() -> None:
                self._saved_behaviors.setdefault(switch.name, switch.behavior)
                switch.behavior = behavior

            if event.until is not None:
                self.network.sim.schedule_at(
                    event.until, self._compile(BehaviorOff(event.until, event.target))
                )
        elif kind == "adversary_strategy":
            switch = self.resolve_switch(event.target)
            stream = self.network.rng.stream(
                f"chaos.{self.schedule.name}.{switch.name}.{event.strategy}"
            )
            branch = event.branch
            if branch is None:
                branch = self._branch_index(event.target, switch.name)
            try:
                strategy = build_strategy(
                    event.strategy,
                    sim=self.network.sim,
                    rng=stream,
                    compare=self.compare_core,
                    branch=branch,
                    rate=event.rate,
                    pace=event.pace,
                    window=event.window,
                )
            except ValueError as exc:
                raise ValueError(
                    f"adversary_strategy on target {event.target!r} "
                    f"(switch {switch.name!r}): {exc}; give the event an "
                    "explicit 'branch' field or use an 'r<i>' target"
                ) from exc
            self.strategy_behaviors[switch.name] = strategy

            def fn() -> None:
                self._saved_behaviors.setdefault(switch.name, switch.behavior)
                switch.behavior = strategy
                strategy.activate()

            if event.until is not None:
                self.network.sim.schedule_at(
                    event.until, self._compile(BehaviorOff(event.until, event.target))
                )
        elif kind == "behavior_off":
            switch = self.resolve_switch(event.target)
            fn = lambda: self._restore_behavior(switch)  # noqa: E731
        elif kind == "controller_crash":
            replica = self.resolve_replica(event.target)
            fn = lambda: self.control_plane.crash_replica(replica)  # noqa: E731
            if event.restart_at is not None:
                self.network.sim.schedule_at(
                    event.restart_at,
                    self._compile(ControllerRestart(event.restart_at, event.target)),
                )
        elif kind == "controller_restart":
            replica = self.resolve_replica(event.target)
            fn = lambda: self.control_plane.restart_replica(replica)  # noqa: E731
        elif kind == "controller_compromise":
            replica = self.resolve_replica(event.target)
            fn = lambda: self.control_plane.compromise_replica(  # noqa: E731
                replica,
                strategy=event.strategy,
                lie_every=event.lie_every,
                until=event.until,
            )
            if event.until is not None:
                self.network.sim.schedule_at(
                    event.until,
                    self._compile(ControllerRestore(event.until, event.target)),
                )
        elif kind == "controller_restore":
            replica = self.resolve_replica(event.target)
            fn = lambda: self.control_plane.restore_replica(replica)  # noqa: E731
        else:  # pragma: no cover - EVENT_KINDS and _compile kept in sync
            raise ValueError(f"unknown fault kind {kind!r}")

        def apply() -> None:
            fn()
            self._record(event)

        return apply

    def _restore_rate(self, link: Link) -> None:
        saved = self._saved_rates.pop(link.name, None)
        if saved is None:
            return
        current = link.rates_bps()
        if current[0] not in (None, 0.0) and saved[0] is not None:
            link.scale_rate(saved[0] / current[0])

    _BRANCH_RE = re.compile(r"r(\d+)$")

    def _branch_index(self, target: str, switch_name: str) -> Optional[int]:
        """Branch index from an ``r<i>`` alias or ``...r<i>`` switch name."""
        for name in (target, switch_name):
            match = self._BRANCH_RE.search(name)
            if match:
                return int(match.group(1))
        return None

    def _restore_behavior(self, switch: OpenFlowSwitch) -> None:
        outgoing = switch.behavior
        if isinstance(outgoing, ScheduledStrategy):
            outgoing.deactivate()
        switch.behavior = self._saved_behaviors.pop(switch.name, None)

    def _record(self, event: FaultEvent) -> None:
        now = self.network.sim.now
        entry = {"time": now, "kind": event.KIND, "target": event.target}
        self.injections.append(entry)
        # the trace record (not the result-dict entry, which stays
        # bit-stable) also carries the fault window, so trajectory
        # queries can correlate packets with overlapping fault spans
        trace_data: Dict[str, Any] = {"target": event.target}
        until = getattr(event, "until", None)
        if until is not None:
            trace_data["until"] = until
        restart_at = getattr(event, "restart_at", None)
        if restart_at is not None:
            trace_data["restart_at"] = restart_at
        self.network.trace.emit(
            now, f"chaos.{event.KIND}", f"chaos.{self.schedule.name}",
            **trace_data,
        )
        if self._c_faults is not None:
            self._c_faults.labels(event.KIND).inc()


# ----------------------------------------------------------------------
# built-in battery (Central3 aliases: r0..r2, link_a{i}=ingress,
# link_b{i}=egress of branch i)
# ----------------------------------------------------------------------
def builtin_battery() -> Dict[str, FaultSchedule]:
    """Short named schedules used by the chaos farm runner and tests."""
    return {
        "crash_restart": FaultSchedule(
            [RouterCrash(0.010, "r1", restart_at=0.025)],
            name="crash_restart",
        ),
        "link_flap": FaultSchedule(
            [LinkDown(0.008, "link_a1", until=0.022)],
            name="link_flap",
        ),
        "loss_burst": FaultSchedule(
            [
                LossBurst(
                    0.005,
                    "link_a2",
                    until=0.020,
                    p_good_to_bad=0.2,
                    p_bad_to_good=0.3,
                    loss_bad=0.9,
                )
            ],
            name="loss_burst",
        ),
        "brownout": FaultSchedule(
            [BandwidthDegrade(0.005, "link_b0", factor=0.25, until=0.020)],
            name="brownout",
        ),
        "midrun_byzantine": FaultSchedule(
            [BehaviorOn(0.010, "r2", behavior="payload_corruption", until=0.025)],
            name="midrun_byzantine",
        ),
    }
