"""Self-healing glue: turn availability alarms into quarantine actions.

The paper stops at the alarm — "the network administrator … can take the
faulty router out of service" (Section V).  :class:`QuarantineController`
automates that administrator: it subscribes to the compare element's
alarm topic and, on ``ALARM_ROUTER_UNAVAILABLE``, asks the compare to
quarantine the branch (shrinking the quorum from k to k−1 so forwarding
continues; with k=3 nothing is masked any more, which the critical alarm
severity records).  The compare itself re-admits the branch after its
probation window of clean copies; the controller just keeps the ordered
transition log that RunReports and tests consume.

Because ``TraceBus.emit`` dispatches synchronously, the quarantine
happens *inside* the unavailability alarm's emit — the alarm record
always precedes the quarantine record, the ordering the tests pin down.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.core.alarms import (
    ALARM_BRANCH_QUARANTINED,
    ALARM_BRANCH_READMITTED,
    ALARM_ROUTER_UNAVAILABLE,
)
from repro.obs.metrics import active_registry
from repro.sim import TraceBus, TraceRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.compare import CompareCore


class QuarantineController:
    """Listens for availability alarms and quarantines the branch.

    ``core`` is any quorum element with the membership API — the
    data-plane :class:`~repro.core.compare.CompareCore` or the
    control-plane :class:`~repro.ctrl.compare.ControlCompare`.
    ``trigger_kinds`` selects which alarms provoke a quarantine; the
    control plane adds ``ALARM_MINORITY_DIVERGENCE`` (a lying replica
    diverges rather than going silent).
    """

    def __init__(
        self,
        core: "CompareCore",
        trace_bus: TraceBus,
        trigger_kinds: Sequence[str] = (ALARM_ROUTER_UNAVAILABLE,),
    ) -> None:
        self.core = core
        self._bus = trace_bus
        self._trigger_kinds = tuple(trigger_kinds)
        #: ordered transition log: dicts of time/event/branch
        self.transitions: List[dict] = []
        registry = active_registry()
        self._c_transitions = (
            registry.counter(
                "quarantine_transitions_total",
                "branch quarantine/readmit transitions",
                labelnames=("event",),
            )
            if registry.enabled
            else None
        )
        trace_bus.subscribe("alarm", self._on_alarm)

    def detach(self) -> None:
        self._bus.unsubscribe("alarm", self._on_alarm)

    # ------------------------------------------------------------------
    def _on_alarm(self, record: TraceRecord) -> None:
        if record.source != self.core.name:
            return
        kind = record.data.get("kind")
        branch = record.data.get("branch")
        if kind in self._trigger_kinds:
            if branch is None or self.core.is_quarantined(branch):
                return
            # Re-entrant: quarantine_branch raises ALARM_BRANCH_QUARANTINED,
            # which lands back here (below) while this frame is live.
            self.core.quarantine_branch(branch, reason=kind)
        elif kind == ALARM_BRANCH_QUARANTINED:
            self._log(record.time, "quarantine", branch)
        elif kind == ALARM_BRANCH_READMITTED:
            self._log(record.time, "readmit", branch)

    def _log(self, time: float, event: str, branch: Optional[int]) -> None:
        self.transitions.append({"time": time, "event": event, "branch": branch})
        if self._c_transitions is not None:
            self._c_transitions.labels(event).inc()

    # ------------------------------------------------------------------
    def quarantined_branches(self) -> List[int]:
        return self.core.quarantined_branches()

    def __repr__(self) -> str:
        return (
            f"QuarantineController(core={self.core.name!r}, "
            f"transitions={len(self.transitions)})"
        )
