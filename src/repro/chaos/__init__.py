"""Deterministic fault injection and self-healing for NetCo combiners.

``repro.chaos`` answers the question every other experiment leaves open:
*does it survive?*  :class:`FaultSchedule` declares typed faults (link
cuts, Gilbert–Elliott bursts, bandwidth brownouts, router crashes,
mid-run compromises) in JSON; :class:`ChaosEngine` compiles them onto a
live network deterministically; :class:`QuarantineController` closes the
loop the paper leaves to the administrator, quarantining a persistently
missing branch and re-admitting it after probation.
"""

from repro.chaos.quarantine import QuarantineController
from repro.chaos.schedule import (
    BEHAVIOR_FACTORIES,
    AdversaryStrategy,
    BandwidthDegrade,
    BehaviorOff,
    BehaviorOn,
    ChaosEngine,
    ControllerCompromise,
    ControllerCrash,
    ControllerRestart,
    ControllerRestore,
    EVENT_KINDS,
    FaultEvent,
    FaultSchedule,
    GilbertElliottLoss,
    LinkDown,
    LinkUp,
    LossBurst,
    RouterCrash,
    RouterRestart,
    builtin_battery,
)

__all__ = [
    "BEHAVIOR_FACTORIES",
    "AdversaryStrategy",
    "BandwidthDegrade",
    "BehaviorOff",
    "BehaviorOn",
    "ChaosEngine",
    "ControllerCompromise",
    "ControllerCrash",
    "ControllerRestart",
    "ControllerRestore",
    "EVENT_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "GilbertElliottLoss",
    "LinkDown",
    "LinkUp",
    "LossBurst",
    "QuarantineController",
    "RouterCrash",
    "RouterRestart",
    "builtin_battery",
]
