"""NetCo: Reliable Routing With Unreliable Routers — a full Python
reproduction of the DSN 2016 paper.

Packages:

* :mod:`repro.sim` — deterministic discrete-event kernel;
* :mod:`repro.net` — packets, links, hosts, topologies (fat-tree);
* :mod:`repro.openflow` — OpenFlow 1.0 match-action substrate;
* :mod:`repro.apps` — controller applications (learning switch, static
  routing, POX-style compare);
* :mod:`repro.core` — the NetCo contribution: hubs, compare, combiner
  chains, shielded routers, virtualized combiners;
* :mod:`repro.adversary` — the Section II threat model as pluggable
  router behaviours;
* :mod:`repro.traffic` — iperf/ping analogues with full TCP Reno;
* :mod:`repro.scenarios` — the paper's evaluation scenarios;
* :mod:`repro.analysis` — experiment runners for every table and figure.

Quickstart::

    from repro.net import Network
    from repro.core import CombinerChainParams, build_combiner_chain

    net = Network(seed=1)
    chain = build_combiner_chain(net, "nc", CombinerChainParams(k=3))
    # attach hosts with net.connect(...), install routes, run traffic.

See ``examples/quickstart.py`` for the end-to-end version.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
