"""The merge registry: named recipes folding farm results into figures.

Each :class:`Merger` is a pure function over ``(specs, results)`` plus
declarative options from the plan JSON (``{"kind": "mean_record",
"metric": "tcp_mbps", ...}``), with companions that turn the merged
value into report records and deterministic text.  Merging walks the
spec list — never completion order — so a sharded run folds to the same
bytes as a serial one; the recipes here are the exact generic forms of
the historical ``merge_fig*`` functions, which survive as one-line
shims over this registry.

:class:`Combiner` recipes fold *multi-stage* plans one step further
(Table I folds three metric records into one scenario × metric table).

The :mod:`repro.analysis` imports are deliberately function-local:
``repro.plan`` must be importable without touching the analysis
package, whose runners import the plan builders (the cycle is broken
here, at the data edge, where the import only happens at merge time).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "Merger",
    "Combiner",
    "get_merger",
    "get_combiner",
    "merger_kinds",
    "combiner_names",
]


def _records_mod():
    from repro.analysis import records

    return records


def _report_mod():
    from repro.analysis import report

    return report


@dataclass(frozen=True)
class Merger:
    """One registered merge recipe.

    ``merge(specs, results, options)`` folds task values; ``records``
    flattens the merged value for a RunReport; ``render`` produces the
    deterministic text ``repro plan run`` prints; ``required`` names the
    options :meth:`check` insists on at validate() time.
    """

    kind: str
    merge: Callable[[List[Any], Dict[str, Any], Dict[str, Any]], Any]
    records: Callable[[Any, Dict[str, Any]], List[Dict[str, Any]]]
    render: Callable[[Any, Dict[str, Any]], str]
    required: tuple = ()

    def check(self, stage: str, options: Dict[str, Any]) -> None:
        missing = [key for key in self.required if key not in options]
        if missing:
            raise ValueError(
                f"stage {stage!r}: merge kind {self.kind!r} needs "
                f"option(s) {missing}"
            )


@dataclass(frozen=True)
class Combiner:
    """A registered multi-stage fold: ``{stage name: merged} -> value``."""

    name: str
    combine: Callable[[Dict[str, Any]], Any]
    records: Callable[[Any], List[Dict[str, Any]]]
    render: Callable[[Any], str]


_MERGERS: Dict[str, Merger] = {}
_COMBINERS: Dict[str, Combiner] = {}


def register_merger(merger: Merger) -> Merger:
    _MERGERS[merger.kind] = merger
    return merger


def register_combiner(combiner: Combiner) -> Combiner:
    _COMBINERS[combiner.name] = combiner
    return combiner


def get_merger(kind: str) -> Merger:
    merger = _MERGERS.get(kind)
    if merger is None:
        raise ValueError(
            f"unknown merge kind {kind!r}; registered: {merger_kinds()}"
        )
    return merger


def get_combiner(name: str) -> Combiner:
    combiner = _COMBINERS.get(name)
    if combiner is None:
        raise ValueError(
            f"unknown combine recipe {name!r}; registered: {combiner_names()}"
        )
    return combiner


def merger_kinds() -> List[str]:
    return sorted(_MERGERS)


def combiner_names() -> List[str]:
    return sorted(_COMBINERS)


def _json_text(value: Any) -> str:
    import json

    return json.dumps(value, indent=2, sort_keys=True)


def group_by_variant(specs, results) -> Dict[str, List[Any]]:
    """Task values grouped by scenario, in spec order (never completion
    order) — the heart of every deterministic record merge."""
    grouped: Dict[str, List[Any]] = {}
    for spec in specs:
        grouped.setdefault(spec.kwargs["variant"], []).append(results[spec.key])
    return grouped


# ----------------------------------------------------------------------
# mean_record: per-scenario sample mean -> ExperimentRecord (figs 4, 7)
# ----------------------------------------------------------------------
def _merge_mean_record(specs, results, options):
    records = _records_mod()
    record = records.ExperimentRecord(options["experiment"], options["description"])
    metric, unit = options["metric"], options["unit"]
    for variant, samples in group_by_variant(specs, results).items():
        record.add(
            variant,
            metric,
            sum(samples) / len(samples),
            unit,
            paper_value=records.paper_value(variant, metric),
        )
    return record


def _record_records(merged, options) -> List[Dict[str, Any]]:
    return [merged.to_dict()]


def _record_render(merged, options) -> str:
    return _report_mod().render_record(merged)


register_merger(Merger(
    kind="mean_record",
    merge=_merge_mean_record,
    records=_record_records,
    render=_record_render,
    required=("experiment", "description", "metric", "unit"),
))


# ----------------------------------------------------------------------
# udp_max_record: one rate-search sample per scenario (fig 5)
# ----------------------------------------------------------------------
def _merge_udp_max_record(specs, results, options):
    records = _records_mod()
    record = records.ExperimentRecord(options["experiment"], options["description"])
    metric, unit = options["metric"], options["unit"]
    for variant, (sample,) in group_by_variant(specs, results).items():
        record.add(
            variant,
            metric,
            sample["mbps"],
            unit,
            paper_value=records.paper_value(variant, metric),
            loss_rate=sample["loss_rate"],
        )
    return record


register_merger(Merger(
    kind="udp_max_record",
    merge=_merge_udp_max_record,
    records=_record_records,
    render=_record_render,
    required=("experiment", "description", "metric", "unit"),
))


# ----------------------------------------------------------------------
# points: task values in spec order, as tuples (fig 6 sweeps)
# ----------------------------------------------------------------------
def _merge_points(specs, results, options):
    return [tuple(results[spec.key]) for spec in specs]


def _points_records(merged, options) -> List[Dict[str, Any]]:
    fields = options.get("fields")
    if fields:
        return [dict(zip(fields, point)) for point in merged]
    return [{"point": list(point)} for point in merged]


def _points_render(merged, options) -> str:
    return _json_text(_points_records(merged, options))


register_merger(Merger(
    kind="points",
    merge=_merge_points,
    records=_points_records,
    render=_points_render,
))


# ----------------------------------------------------------------------
# size_series: mean per (scenario, payload size) (fig 8)
# ----------------------------------------------------------------------
def _merge_size_series(specs, results, options):
    axis = options.get("axis", "payload_size")
    grouped: Dict[str, Dict[Any, List[float]]] = {}
    for spec in specs:
        by_size = grouped.setdefault(spec.kwargs["variant"], {})
        by_size.setdefault(spec.kwargs[axis], []).append(results[spec.key])
    return {
        variant: [
            (size, sum(samples) / len(samples))
            for size, samples in by_size.items()
        ]
        for variant, by_size in grouped.items()
    }


def _size_series_records(merged, options) -> List[Dict[str, Any]]:
    return [
        {"scenario": variant, "points": [[size, value] for size, value in points]}
        for variant, points in merged.items()
    ]


def _size_series_render(merged, options) -> str:
    report = _report_mod()
    axis = options.get("axis", "payload_size")
    unit = options.get("unit", "")
    blocks = [
        report.render_series(
            variant, axis, unit, [(size, round(value, 5)) for size, value in points]
        )
        for variant, points in merged.items()
    ]
    return "\n".join(blocks)


register_merger(Merger(
    kind="size_series",
    merge=_merge_size_series,
    records=_size_series_records,
    render=_size_series_render,
))


# ----------------------------------------------------------------------
# records_list: raw task records in spec order (chaos batteries)
# ----------------------------------------------------------------------
def _merge_records_list(specs, results, options):
    return [results[spec.key] for spec in specs]


def _records_list_records(merged, options) -> List[Dict[str, Any]]:
    return list(merged)


def _records_list_render(merged, options) -> str:
    return _json_text(merged)


register_merger(Merger(
    kind="records_list",
    merge=_merge_records_list,
    records=_records_list_records,
    render=_records_list_render,
))


# ----------------------------------------------------------------------
# detection_table: advbench records aggregated over seeds per
# (variant, adversary, profile) -> a paper-style detection-latency table
# ----------------------------------------------------------------------
def _merge_detection_table(specs, results, options):
    grouped: Dict[tuple, Dict[str, Any]] = {}
    order: List[tuple] = []
    for spec in specs:
        rec = results[spec.key]
        key = (rec["variant"], rec["adversary"], rec["profile"])
        row = grouped.get(key)
        if row is None:
            row = grouped[key] = {
                "variant": rec["variant"],
                "k": rec["k"],
                "quorum": rec["quorum"],
                "adversary": rec["adversary"],
                "profile": rec["profile"],
                "seeds": 0,
                "detected": 0,
                "tampered": 0,
                # safety metrics fold as worst-case over seeds, so the
                # "must be 0" claims read straight off the table
                "leaked_max": 0,
                "masked_damage_max": 0,
                "false_quarantine_rate_max": 0.0,
                "_alarm": [],
                "_latency": [],
            }
            order.append(key)
        row["seeds"] += 1
        row["tampered"] += rec["tampered"]
        if rec["time_to_first_alarm"] is not None:
            row["_alarm"].append(rec["time_to_first_alarm"])
        if rec["detection_latency"] is not None:
            row["detected"] += 1
            row["_latency"].append(rec["detection_latency"])
        row["leaked_max"] = max(
            row["leaked_max"], rec["packets_leaked_before_quarantine"]
        )
        row["masked_damage_max"] = max(row["masked_damage_max"], rec["masked_damage"])
        row["false_quarantine_rate_max"] = max(
            row["false_quarantine_rate_max"], rec["false_quarantine_rate"]
        )
    rows = []
    for key in order:
        row = grouped[key]
        alarm = row.pop("_alarm")
        latency = row.pop("_latency")
        row["time_to_first_alarm"] = (
            round(sum(alarm) / len(alarm), 6) if alarm else None
        )
        row["detection_latency"] = (
            round(sum(latency) / len(latency), 6) if latency else None
        )
        rows.append(row)
    return rows


def _detection_table_records(merged, options) -> List[Dict[str, Any]]:
    return list(merged)


def _ms(value: Optional[float]) -> str:
    return f"{value * 1e3:.2f}ms" if value is not None else "-"


def _detection_table_render(merged, options) -> str:
    report = _report_mod()
    headers = [
        "variant", "k", "adversary", "profile", "detected",
        "t_alarm", "t_quarantine", "leaked", "masked", "false_q",
    ]
    table = [
        [
            row["variant"],
            str(row["k"]),
            row["adversary"],
            row["profile"],
            f"{row['detected']}/{row['seeds']}",
            _ms(row["time_to_first_alarm"]),
            _ms(row["detection_latency"]),
            str(row["leaked_max"]),
            str(row["masked_damage_max"]),
            f"{row['false_quarantine_rate_max']:.2f}",
        ]
        for row in merged
    ]
    return (
        "detection-latency surface (worst case over seeds; masked must "
        "be 0 below quorum)\n" + report.format_table(headers, table)
    )


register_merger(Merger(
    kind="detection_table",
    merge=_merge_detection_table,
    records=_detection_table_records,
    render=_detection_table_render,
))


# ----------------------------------------------------------------------
# metric_table: fold stage records into values[metric][scenario]
# (Table I: the tcp/udp/rtt stages of one plan)
# ----------------------------------------------------------------------
def _combine_metric_table(staged: Dict[str, Any]) -> Dict[str, Dict[str, float]]:
    values: Dict[str, Dict[str, float]] = {}
    for record in staged.values():
        for row in record.rows:
            values.setdefault(row.metric, {})[row.scenario] = row.value
    return values


def _metric_table_records(values) -> List[Dict[str, Any]]:
    scenarios: List[str] = []
    for per_scenario in values.values():
        for scenario in per_scenario:
            if scenario not in scenarios:
                scenarios.append(scenario)
    return [
        {
            "scenario": scenario,
            **{
                metric: per_scenario[scenario]
                for metric, per_scenario in values.items()
                if scenario in per_scenario
            },
        }
        for scenario in scenarios
    ]


def _metric_table_render(values) -> str:
    records = _records_mod()
    report = _report_mod()
    paper: Dict[str, Dict[str, float]] = {}
    for (scenario, metric), value in records.PAPER_TABLE1.items():
        paper.setdefault(metric, {})[scenario] = value
    return report.render_table1(values, paper=paper)


register_combiner(Combiner(
    name="metric_table",
    combine=_combine_metric_table,
    records=_metric_table_records,
    render=_metric_table_render,
))
