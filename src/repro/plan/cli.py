"""``python -m repro plan`` — run, validate and list experiment plans.

    python -m repro plan list
    python -m repro plan validate examples/plans/*.json
    python -m repro plan run examples/plans/fig5.json --jobs 4
    python -m repro plan run table1 --quick

``run`` accepts a plan JSON path or a built-in plan name.  Everything
deterministic (the merged figure records) goes to stdout; farm
telemetry (wall times, cache hit rates) goes to stderr — so a
``--jobs N`` run's stdout is byte-identical to the serial run's, which
CI exploits with a plain ``diff``.
"""

from __future__ import annotations

import argparse
import contextlib
import os
import sys
from typing import List, Optional

from repro.analysis.report import render_farm_summary
from repro.farm import FarmExecutor, FarmTaskError, ResultCache
from repro.plan.builtin import builtin_plan, builtin_plan_names
from repro.plan.mergers import get_combiner, get_merger
from repro.plan.plan import ExperimentPlan

#: where the shipped plan artefacts live, relative to the repo root
PLAN_DIR = os.path.join("examples", "plans")


def resolve_plan(ref: str, quick: bool = False) -> ExperimentPlan:
    """A plan from a JSON path, or a built-in plan by name."""
    if os.path.exists(ref):
        if quick:
            raise ValueError("--quick only applies to built-in plan names")
        return ExperimentPlan.load(ref)
    if ref in builtin_plan_names():
        return builtin_plan(ref, quick=quick)
    raise ValueError(
        f"no plan file {ref!r} and no built-in plan of that name "
        f"(built-ins: {list(builtin_plan_names())})"
    )


def _render_output(plan: ExperimentPlan, staged, combined) -> str:
    """Deterministic text for one finished plan run."""
    if plan.combine is not None:
        return get_combiner(plan.combine).render(combined)
    blocks = []
    for stage in plan.stages:
        merger = get_merger(stage.merge["kind"])
        blocks.append(merger.render(staged[stage.name], stage.merge))
    return "\n".join(blocks)


def plan_records(plan: ExperimentPlan, staged, combined) -> List[dict]:
    """Flattened report records for one finished plan run."""
    if plan.combine is not None:
        return get_combiner(plan.combine).records(combined)
    records: List[dict] = []
    for stage in plan.stages:
        merger = get_merger(stage.merge["kind"])
        for record in merger.records(staged[stage.name], stage.merge):
            records.append({"stage": stage.name, **record})
    return records


def _cmd_list() -> int:
    for name in builtin_plan_names():
        plan = builtin_plan(name)
        specs = plan.expand()
        path = os.path.join(PLAN_DIR, f"{name}.json")
        where = path if os.path.exists(path) else "(built-in)"
        print(f"{name:8s} stages={len(plan.stages)} specs={len(specs):3d}  "
              f"{where}")
        if plan.description:
            print(f"         {plan.description}")
    return 0


def _cmd_validate(refs: List[str]) -> int:
    failed = 0
    for ref in refs:
        try:
            plan = resolve_plan(ref)
            plan.validate()
            # the serialisation contract: a valid plan must round-trip
            reparsed = ExperimentPlan.from_json(plan.to_json())
            if reparsed.to_json() != plan.to_json():
                raise ValueError("plan does not round-trip to identical JSON")
            specs = plan.expand()
        except (ValueError, OSError) as exc:
            print(f"{ref}: INVALID — {exc}", file=sys.stderr)
            failed += 1
            continue
        print(f"{ref}: ok ({len(plan.stages)} stage(s), {len(specs)} spec(s))")
    return 1 if failed else 0


def _cmd_run(args) -> int:
    try:
        plan = resolve_plan(args.plan, quick=args.quick)
        plan.validate()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    telemetry = None
    if args.events_log or args.serve is not None:
        from repro.obs.wiring import FleetTelemetry

        telemetry = FleetTelemetry(
            events_log=args.events_log,
            serve=args.serve,
            serve_grace=args.serve_grace,
            name=plan.name,
        )
    registry_scope = (
        telemetry.farm_registry() if telemetry is not None
        else contextlib.nullcontext()
    )
    with registry_scope:
        farm = FarmExecutor(
            jobs=args.jobs,
            cache=None if args.no_cache else ResultCache(root=args.cache_dir),
            timeout=args.task_timeout,
            profile_dir=args.profile_shards,
        )
    if telemetry is not None:
        telemetry.attach(farm, name=plan.name)
    try:
        results = farm.run(plan.expand())
    except FarmTaskError as exc:
        print(f"error: {exc}", file=sys.stderr)
        if farm.progress.queued:
            print(render_farm_summary(farm.progress, cache=farm.cache),
                  file=sys.stderr)
        return 1
    finally:
        if args.profile_shards is not None:
            from repro.farm.profiling import aggregate_profiles

            aggregated = aggregate_profiles(args.profile_shards)
            if aggregated is not None:
                count, table = aggregated
                print(f"--- shard profiles: {count} dump(s) in "
                      f"{args.profile_shards} ---", file=sys.stderr)
                print(table, file=sys.stderr)
        if telemetry is not None:
            telemetry.close()
    staged = plan.merge_stages(results)
    combined = plan.merge(results)
    print(_render_output(plan, staged, combined))
    if farm.progress.queued:
        print(render_farm_summary(farm.progress, cache=farm.cache),
              file=sys.stderr)
    if args.report:
        from repro.obs.report import RunReport, diff_reports

        report = RunReport(
            name=plan.name,
            meta={"plan": plan.name, "jobs": args.jobs, "quick": args.quick},
            records=plan_records(plan, staged, combined),
            farm={plan.name: farm.progress.snapshot()},
        )
        report.save(args.report)
        print(f"[run report written to {args.report}]", file=sys.stderr)
        if plan.baseline:
            base = RunReport.load(plan.baseline)
            watches = plan.watch_rules()
            findings = (
                diff_reports(base, report, watches)
                if watches else diff_reports(base, report)
            )
            breached = [f for f in findings if f.breached]
            for finding in findings:
                print(finding.describe(), file=sys.stderr)
            if breached:
                print(f"error: {len(breached)} watched counter(s) regressed "
                      f"vs {plan.baseline}", file=sys.stderr)
                return 1
    return 0


def plan_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro plan",
        description="Declarative experiment plans over the experiment farm.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list built-in plans and their artefacts")

    p_validate = sub.add_parser(
        "validate", help="validate plan files (schema, scenarios, "
                         "schedules, round-trip)")
    p_validate.add_argument("plans", nargs="+", metavar="PLAN",
                            help="plan JSON path or built-in name")

    p_run = sub.add_parser("run", help="expand a plan onto the farm and "
                                       "merge the results")
    p_run.add_argument("plan", metavar="PLAN",
                       help="plan JSON path or built-in name")
    p_run.add_argument("--quick", action="store_true",
                       help="built-in plans only: shorter durations / "
                            "fewer repetitions")
    p_run.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="shard simulations over N worker processes")
    p_run.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk result cache")
    p_run.add_argument("--cache-dir", default=".repro-cache", metavar="DIR",
                       help="result-cache location (default .repro-cache/)")
    p_run.add_argument("--task-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-task wall-clock timeout on the farm")
    p_run.add_argument("--report", default=None, metavar="PATH",
                       help="write a RunReport JSON here; diffed against "
                            "the plan's baseline when one is declared")
    p_run.add_argument("--events-log", default=None, metavar="PATH",
                       help="append every farm event to a JSONL log with "
                            "gapless sequence numbers (replay with "
                            "`repro fleet replay PATH`)")
    p_run.add_argument("--serve", type=int, default=None, metavar="PORT",
                       nargs="?", const=0,
                       help="serve the live dashboard (/metrics /fleet "
                            "/events) on PORT; omit PORT for an ephemeral "
                            "one (URL printed to stderr)")
    p_run.add_argument("--serve-grace", type=float, default=0.0,
                       metavar="SECONDS",
                       help="keep the dashboard up this long after the run "
                            "finishes")
    p_run.add_argument("--profile-shards", default=None, metavar="DIR",
                       nargs="?", const=".repro-profile",
                       help="cProfile every farm task into per-shard dumps "
                            "under DIR (default .repro-profile/); aggregate "
                            "with `repro fleet profile DIR`")

    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "validate":
        return _cmd_validate(args.plans)
    return _cmd_run(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(plan_main())
