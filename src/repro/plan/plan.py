"""Declarative experiment plans: the policy object behind every figure.

An :class:`ExperimentPlan` is a JSON-serialisable description of one
experiment — which scenarios to build (names resolved through the
scenario registry, :mod:`repro.scenarios.registry`), which parameter
axes to sweep, which traffic task to run at each grid point, which
seeds/repetitions to take, an optional embedded
:class:`~repro.chaos.schedule.FaultSchedule` battery, and obs watch
rules / a baseline reference for regression gating.  The plan is pure
*policy*; the *mechanisms* stay where they are:

* :meth:`ExperimentPlan.expand` compiles the plan into the flat
  ``List[RunSpec]`` the experiment farm executes (sharded, cached,
  deterministic — all of PR 1 applies unchanged);
* :meth:`ExperimentPlan.merge` folds farm results back into figure
  records through the *merge registry* (:mod:`repro.plan.mergers`), in
  spec order, never completion order, so parallel output stays
  bit-identical to serial.

A plan is a list of *stages* so that multi-metric experiments (Table I
is TCP + UDP + RTT) expand into **one** farm batch: every independent
simulation of every stage lands in the same spec list, shards never
idle between metrics, and each stage still merges its own slice of the
results.

Expansion order is deterministic and documented: for each stage, the
grid is ``scenarios × schedules × sweep axes (sorted by name) × seeds``
with seeds innermost — exactly the loop nesting the historical
``specs_*`` builders used, which is what keeps plan-built specs (and
therefore cache keys and merged records) bit-identical to the legacy
API.  ``rep_args`` values cycle by seed *position*, expressing designs
like Figure 4's alternating transfer direction declaratively.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from itertools import product
from typing import Any, Dict, List, Optional

from repro.chaos.schedule import FaultSchedule
from repro.farm.executor import FarmExecutor
from repro.farm.spec import RunSpec, resolve_runner
from repro.obs.report import WatchRule
from repro.plan.mergers import get_combiner, get_merger
from repro.scenarios.registry import get_scenario
from repro.scenarios.testbed import TestbedParams

__all__ = ["PLAN_VERSION", "PlanStage", "ExperimentPlan"]

PLAN_VERSION = 1

#: TestbedParams field names, for validating stage ``params`` overrides
_PARAM_FIELDS = frozenset(TestbedParams.__dataclass_fields__)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass
class PlanStage:
    """One task grid of a plan: a runner swept over scenario/parameter
    axes, with its own seeds and merge recipe.

    ``params`` is the literal value the farm task receives as its
    ``params`` kwarg: ``None`` for calibrated defaults, or a (full or
    partial) ``TestbedParams`` field dict.
    """

    name: str
    task: str
    seeds: List[int]
    merge: Dict[str, Any]
    scenarios: List[str] = field(default_factory=list)
    schedules: List[Dict[str, Any]] = field(default_factory=list)
    sweep: Dict[str, List[Any]] = field(default_factory=dict)
    args: Dict[str, Any] = field(default_factory=dict)
    rep_args: Dict[str, List[Any]] = field(default_factory=dict)
    params: Optional[Dict[str, Any]] = None

    # -- validation -----------------------------------------------------
    def validate(self) -> None:
        _require(bool(self.name), "stage name must be non-empty")
        try:
            resolve_runner(self.task)
        except KeyError as exc:
            raise ValueError(f"stage {self.name!r}: {exc.args[0]}") from None
        _require(
            bool(self.seeds) and all(isinstance(s, int) for s in self.seeds),
            f"stage {self.name!r}: seeds must be a non-empty list of ints",
        )
        for variant in self.scenarios:
            get_scenario(variant)  # raises with the registry's message
        for schedule in self.schedules:
            FaultSchedule.from_dict(schedule)  # validates events + fields
        for axis, values in self.sweep.items():
            _require(
                isinstance(values, list) and bool(values),
                f"stage {self.name!r}: sweep axis {axis!r} must be a "
                f"non-empty list",
            )
        for key, cycle in self.rep_args.items():
            _require(
                isinstance(cycle, list) and bool(cycle),
                f"stage {self.name!r}: rep_args {key!r} must be a "
                f"non-empty list to cycle over",
            )
        if self.params is not None:
            unknown = set(self.params) - _PARAM_FIELDS
            _require(
                not unknown,
                f"stage {self.name!r}: unknown testbed param(s) "
                f"{sorted(unknown)}",
            )
        _require(
            isinstance(self.merge, dict) and "kind" in self.merge,
            f"stage {self.name!r}: merge must be a dict with a 'kind'",
        )
        get_merger(self.merge["kind"]).check(self.name, self.merge)

    # -- expansion ------------------------------------------------------
    def axes(self) -> List[tuple]:
        """The grid axes, outermost first: ``(kwarg name, values)``."""
        axes: List[tuple] = []
        if self.scenarios:
            axes.append(("variant", list(self.scenarios)))
        if self.schedules:
            axes.append(("schedule", list(self.schedules)))
        for name in sorted(self.sweep):
            axes.append((name, list(self.sweep[name])))
        return axes

    def expand(self) -> List[RunSpec]:
        """Compile the stage into farm work items (see module doc for
        the ordering contract)."""
        axes = self.axes()
        names = [name for name, _ in axes]
        specs: List[RunSpec] = []
        for point in product(*(values for _, values in axes)):
            for index, seed in enumerate(self.seeds):
                kwargs: Dict[str, Any] = dict(zip(names, point))
                kwargs.update(self.args)
                for key, cycle in self.rep_args.items():
                    kwargs[key] = cycle[index % len(cycle)]
                kwargs["params"] = self.params
                specs.append(RunSpec(self.task, kwargs, seed=seed))
        return specs

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "task": self.task,
            "seeds": list(self.seeds),
            "merge": dict(self.merge),
        }
        if self.scenarios:
            data["scenarios"] = list(self.scenarios)
        if self.schedules:
            data["schedules"] = [dict(s) for s in self.schedules]
        if self.sweep:
            data["sweep"] = {k: list(v) for k, v in self.sweep.items()}
        if self.args:
            data["args"] = dict(self.args)
        if self.rep_args:
            data["rep_args"] = {k: list(v) for k, v in self.rep_args.items()}
        if self.params is not None:
            data["params"] = dict(self.params)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PlanStage":
        record = dict(data)
        known = {
            "name", "task", "seeds", "merge", "scenarios", "schedules",
            "sweep", "args", "rep_args", "params",
        }
        unknown = set(record) - known
        _require(
            not unknown,
            f"plan stage: unknown field(s) {sorted(unknown)} "
            f"(allowed: {sorted(known)})",
        )
        for required in ("name", "task", "seeds", "merge"):
            _require(required in record, f"plan stage: missing field {required!r}")
        return cls(
            name=record["name"],
            task=record["task"],
            seeds=list(record["seeds"]),
            merge=dict(record["merge"]),
            scenarios=list(record.get("scenarios", [])),
            schedules=list(record.get("schedules", [])),
            sweep=dict(record.get("sweep", {})),
            args=dict(record.get("args", {})),
            rep_args=dict(record.get("rep_args", {})),
            params=record.get("params"),
        )


@dataclass
class ExperimentPlan:
    """A named, validated, JSON-serialisable experiment description."""

    name: str
    stages: List[PlanStage]
    description: str = ""
    combine: Optional[str] = None
    watches: List[Dict[str, Any]] = field(default_factory=list)
    baseline: Optional[str] = None

    # -- validation -----------------------------------------------------
    def validate(self) -> None:
        _require(bool(self.name), "plan name must be non-empty")
        _require(bool(self.stages), f"plan {self.name!r}: no stages")
        seen = set()
        for stage in self.stages:
            _require(
                stage.name not in seen,
                f"plan {self.name!r}: duplicate stage name {stage.name!r}",
            )
            seen.add(stage.name)
            stage.validate()
        if self.combine is not None:
            get_combiner(self.combine)  # raises on unknown name
        for watch in self.watches:
            try:
                WatchRule(**watch)
            except TypeError as exc:
                raise ValueError(
                    f"plan {self.name!r}: bad watch rule {watch!r}: {exc}"
                ) from None

    # -- execution ------------------------------------------------------
    def expand(self) -> List[RunSpec]:
        """Every stage's work items, concatenated — one farm batch."""
        specs: List[RunSpec] = []
        for stage in self.stages:
            specs.extend(stage.expand())
        return specs

    def merge_stages(self, results: Dict[str, Any]) -> Dict[str, Any]:
        """Per-stage merged values, in stage order."""
        staged: Dict[str, Any] = {}
        for stage in self.stages:
            merger = get_merger(stage.merge["kind"])
            staged[stage.name] = merger.merge(stage.expand(), results, stage.merge)
        return staged

    def merge(self, results: Dict[str, Any]) -> Any:
        """Fold farm results into the plan's final value.

        Single-stage plans return that stage's merged value directly;
        multi-stage plans return ``{stage name: value}`` unless a
        ``combine`` recipe folds them further (Table I).
        """
        staged = self.merge_stages(results)
        if self.combine is not None:
            return get_combiner(self.combine).combine(staged)
        if len(staged) == 1:
            return next(iter(staged.values()))
        return staged

    def run(self, farm: Optional[FarmExecutor] = None) -> Any:
        """Expand, execute on the farm (inline if none given), merge."""
        executor = farm if farm is not None else FarmExecutor()
        return self.merge(executor.run(self.expand()))

    def watch_rules(self) -> List[WatchRule]:
        return [WatchRule(**watch) for watch in self.watches]

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "version": PLAN_VERSION,
            "name": self.name,
            "stages": [stage.to_dict() for stage in self.stages],
        }
        if self.description:
            data["description"] = self.description
        if self.combine is not None:
            data["combine"] = self.combine
        if self.watches:
            data["watches"] = [dict(w) for w in self.watches]
        if self.baseline is not None:
            data["baseline"] = self.baseline
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentPlan":
        record = dict(data)
        version = record.pop("version", PLAN_VERSION)
        if version > PLAN_VERSION:
            raise ValueError(
                f"plan version {version} is newer than {PLAN_VERSION}"
            )
        known = {"name", "description", "stages", "combine", "watches", "baseline"}
        unknown = set(record) - known
        _require(
            not unknown,
            f"plan: unknown field(s) {sorted(unknown)} (allowed: "
            f"{sorted(known | {'version'})})",
        )
        for required in ("name", "stages"):
            _require(required in record, f"plan: missing field {required!r}")
        return cls(
            name=record["name"],
            stages=[PlanStage.from_dict(s) for s in record["stages"]],
            description=record.get("description", ""),
            combine=record.get("combine"),
            watches=list(record.get("watches", [])),
            baseline=record.get("baseline"),
        )

    def to_json(self) -> str:
        """Canonical JSON text — what :meth:`save` writes and the
        byte-identical round-trip tests pin down."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ExperimentPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path) -> "ExperimentPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))

    def save(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())

    def __repr__(self) -> str:
        return (
            f"ExperimentPlan({self.name!r}, stages={len(self.stages)}, "
            f"specs={len(self.expand())})"
        )
