"""Built-in plans: every paper figure/table as an ExperimentPlan.

These builders are the single source of truth for the evaluation grids.
Three consumers share them:

* the legacy ``specs_*``/``run_*`` API in :mod:`repro.analysis.runners`
  (thin shims over these builders, bit-identical to the historical
  hand-wired expansion);
* the experiment CLI's figure commands (aliases for
  ``builtin_plan(name, quick=...)``);
* the checked-in JSON artefacts under ``examples/plans/`` (each file is
  exactly ``builtin_plan(name).to_json()``; a test pins the bytes).

``params`` arguments are the literal task-kwarg value: ``None`` for the
calibrated defaults or a ``TestbedParams`` field dict.
"""

from __future__ import annotations

from dataclasses import asdict, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.plan.plan import ExperimentPlan, PlanStage
from repro.scenarios.registry import figure_scenarios, table1_scenarios
from repro.scenarios.testbed import TestbedParams

__all__ = [
    "jitter_params",
    "fig4_plan",
    "fig5_plan",
    "fig6_plan",
    "fig7_plan",
    "fig8_plan",
    "chaos_plan",
    "ctrlbft_plan",
    "advbench_plan",
    "table1_plan",
    "smoke_plan",
    "builtin_plan",
    "builtin_plan_names",
    "QUICK_SETTINGS",
]


def jitter_params(base: Optional[TestbedParams] = None) -> TestbedParams:
    """Parameters that expose the compare-cache cleanup mechanism.

    The paper explains Figure 8 by cache pressure: many small packets
    fill the compare's packet cache, each cleanup stalls the compare,
    and the stalls surface as jitter.  A small cache and a longer buffer
    timeout make the mechanism visible at the benchmark's packet rates.
    """
    base = base or TestbedParams()
    return replace(
        base,
        compare_cache_capacity=32,
        compare_buffer_timeout=20e-3,
    )


def _seed_range(seed: int, repetitions: int) -> List[int]:
    return [seed + rep for rep in range(repetitions)]


# ----------------------------------------------------------------------
# stage builders (shared between single-figure plans and Table I)
# ----------------------------------------------------------------------
def _tcp_stage(
    scenarios: Sequence[str],
    duration: float,
    repetitions: int,
    seed: int,
    params: Optional[Dict[str, Any]],
    name: str = "tcp",
) -> PlanStage:
    return PlanStage(
        name=name,
        task="fig4.tcp",
        scenarios=list(scenarios),
        args={"duration": duration},
        # alternate directions as the paper's 10+10 design does
        rep_args={"reverse": [False, True]},
        seeds=_seed_range(seed, repetitions),
        params=params,
        merge={
            "kind": "mean_record",
            "experiment": "Figure 4",
            "description": "TCP throughput",
            "metric": "tcp_mbps",
            "unit": "Mbit/s",
        },
    )


def _udp_max_stage(
    scenarios: Sequence[str],
    duration: float,
    iterations: int,
    seed: int,
    params: Optional[Dict[str, Any]],
    name: str = "udp",
) -> PlanStage:
    return PlanStage(
        name=name,
        task="fig5.udp_max",
        scenarios=list(scenarios),
        args={"duration": duration, "iterations": iterations},
        seeds=[seed],
        params=params,
        merge={
            "kind": "udp_max_record",
            "experiment": "Figure 5",
            "description": "max UDP throughput at loss < 0.5%",
            "metric": "udp_mbps",
            "unit": "Mbit/s",
        },
    )


def _rtt_stage(
    scenarios: Sequence[str],
    count: int,
    sequences: int,
    seed: int,
    params: Optional[Dict[str, Any]],
    name: str = "rtt",
) -> PlanStage:
    return PlanStage(
        name=name,
        task="fig7.rtt",
        scenarios=list(scenarios),
        args={"count": count},
        seeds=_seed_range(seed, sequences),
        params=params,
        merge={
            "kind": "mean_record",
            "experiment": "Figure 7",
            "description": "ping round-trip time",
            "metric": "rtt_ms",
            "unit": "ms",
        },
    )


# ----------------------------------------------------------------------
# the figure plans
# ----------------------------------------------------------------------
def fig4_plan(
    scenarios: Optional[Sequence[str]] = None,
    duration: float = 0.15,
    repetitions: int = 2,
    seed: int = 1,
    params: Optional[Dict[str, Any]] = None,
) -> ExperimentPlan:
    return ExperimentPlan(
        name="fig4",
        description="Figure 4: TCP bulk throughput per scenario, "
                    "alternating transfer direction per repetition.",
        stages=[_tcp_stage(
            scenarios if scenarios is not None else figure_scenarios(),
            duration, repetitions, seed, params,
        )],
    )


def fig5_plan(
    scenarios: Optional[Sequence[str]] = None,
    duration: float = 0.08,
    iterations: int = 8,
    seed: int = 1,
    params: Optional[Dict[str, Any]] = None,
) -> ExperimentPlan:
    return ExperimentPlan(
        name="fig5",
        description="Figure 5: the paper's 'adjust -b until a maximum is "
                    "reached' UDP search per scenario.",
        stages=[_udp_max_stage(
            scenarios if scenarios is not None else figure_scenarios(),
            duration, iterations, seed, params,
        )],
    )


def fig6_plan(
    offered_mbps: Sequence[float] = (60, 120, 180, 210, 230, 250, 270, 300, 350),
    duration: float = 0.08,
    seed: int = 1,
    params: Optional[Dict[str, Any]] = None,
    variant: str = "central3",
) -> ExperimentPlan:
    return ExperimentPlan(
        name="fig6",
        description="Figure 6: offered UDP rate vs goodput and loss "
                    "(Central3 loss-correlation sweep).",
        stages=[PlanStage(
            name="sweep",
            task="fig6.udp_point",
            scenarios=[variant],
            sweep={"rate_mbps": list(offered_mbps)},
            args={"duration": duration},
            seeds=[seed],
            params=params,
            merge={
                "kind": "points",
                "fields": ["offered_mbps", "goodput_mbps", "loss_rate"],
            },
        )],
    )


def fig7_plan(
    scenarios: Optional[Sequence[str]] = None,
    count: int = 50,
    sequences: int = 3,
    seed: int = 1,
    params: Optional[Dict[str, Any]] = None,
) -> ExperimentPlan:
    return ExperimentPlan(
        name="fig7",
        description="Figure 7: three sequences of echo cycles per "
                    "scenario (ping round-trip time).",
        stages=[_rtt_stage(
            scenarios if scenarios is not None else table1_scenarios(),
            count, sequences, seed, params,
        )],
    )


def fig8_plan(
    scenarios: Optional[Sequence[str]] = None,
    payload_sizes: Sequence[int] = (128, 256, 512, 1024, 1470),
    rate_mbps: float = 10.0,
    duration: float = 0.15,
    repetitions: int = 2,
    seed: int = 1,
    params: Optional[Dict[str, Any]] = None,
) -> ExperimentPlan:
    # The tuned parameter set travels in full so plan-built specs hash
    # identically to the historical specs_fig8 cache keys.
    base = TestbedParams(**params) if params else None
    tuned = asdict(jitter_params(base))
    return ExperimentPlan(
        name="fig8",
        description="Figure 8: RFC 3550 jitter per (scenario, payload "
                    "size) at a fixed bitrate, compare-cache pressure "
                    "parameters.",
        stages=[PlanStage(
            name="jitter",
            task="fig8.jitter",
            scenarios=list(
                scenarios if scenarios is not None else table1_scenarios()
            ),
            sweep={"payload_size": list(payload_sizes)},
            args={"rate_mbps": rate_mbps, "duration": duration},
            seeds=_seed_range(seed, repetitions),
            params=tuned,
            merge={"kind": "size_series", "unit": "jitter ms"},
        )],
    )


def chaos_plan(
    schedules: Optional[List[Dict[str, Any]]] = None,
    duration: float = 0.05,
    rate_mbps: float = 20.0,
    seeds: Sequence[int] = (1, 2),
    params: Optional[Dict[str, Any]] = None,
    variant: str = "central3",
) -> ExperimentPlan:
    """The chaos battery as a plan, fault schedules embedded.

    ``schedules`` are FaultSchedule dicts (JSON form); defaults to the
    built-in battery.  One spec per (schedule, seed), schedule-major.
    """
    if schedules is None:
        from repro.chaos import builtin_battery

        schedules = [s.to_dict() for s in builtin_battery().values()]
    return ExperimentPlan(
        name="chaos",
        description="Chaos battery: survivability of one UDP flow under "
                    "embedded fault schedules, per (schedule, seed).",
        stages=[PlanStage(
            name="battery",
            task="chaos.run",
            scenarios=[variant],
            schedules=[dict(s) for s in schedules],
            args={"duration": duration, "rate_mbps": rate_mbps},
            seeds=list(seeds),
            params=params,
            merge={"kind": "records_list"},
        )],
    )


def ctrlbft_plan(
    variants: Sequence[str] = ("linespeed", "central3"),
    ctrl_ks: Sequence[int] = (1, 3),
    adversaries: Sequence[str] = ("none", "crash", "lying"),
    duration: float = 0.06,
    rate_mbps: float = 10.0,
    seeds: Sequence[int] = (1,),
    params: Optional[Dict[str, Any]] = None,
) -> ExperimentPlan:
    """Control-plane BFT sweep: data-plane k (via the variant) ×
    control-plane k × adversary.

    Each grid point is one ``ctrl.run``: a UDP flow under a replicated
    reactive control plane with an optional replica crash or lying
    compromise, recording blocked flow-mods, detection latency, the
    quarantine timeline and a data-plane delivery fingerprint (the
    bit-identity artefact: ``ctrl_k`` must not change it)."""
    return ExperimentPlan(
        name="ctrlbft",
        description="Replicated control plane: data-plane k x control-"
                    "plane k x adversary grid, quorum-voted flow-mods.",
        stages=[PlanStage(
            name="grid",
            task="ctrl.run",
            scenarios=list(variants),
            sweep={
                "adversary": list(adversaries),
                "ctrl_k": list(ctrl_ks),
            },
            args={"duration": duration, "rate_mbps": rate_mbps},
            seeds=list(seeds),
            params=params,
            merge={"kind": "records_list"},
        )],
    )


def advbench_plan(
    variants: Sequence[str] = ("central3", "central5"),
    adversaries: Optional[Sequence[str]] = None,
    profiles: Sequence[str] = ("balanced", "vigilant"),
    duration: float = 0.03,
    rate_mbps: float = 20.0,
    seeds: Sequence[int] = (1, 2),
    params: Optional[Dict[str, Any]] = None,
) -> ExperimentPlan:
    """Detection-latency benchmark: adversary strategy × k × compare profile.

    Each grid point is one ``adv.run``: a UDP flow through a combiner
    while a scheduled adversary strategy (``repro.adversary.strategies``)
    runs on one or more branches, recording time-to-first-alarm,
    time-to-quarantine, packets leaked before quarantine, masked damage
    and the honest-branch false-quarantine rate.  Seeds fold into a
    paper-style table per (variant, adversary, profile)."""
    if adversaries is None:
        from repro.analysis.tasks import ADVBENCH_ADVERSARIES

        adversaries = ADVBENCH_ADVERSARIES
    return ExperimentPlan(
        name="advbench",
        description="Adversary strategies vs the combiner: detection "
                    "latency, leaked packets, masked damage and false "
                    "quarantines per adversary x k x compare profile.",
        stages=[PlanStage(
            name="surface",
            task="adv.run",
            scenarios=list(variants),
            sweep={
                "adversary": list(adversaries),
                "profile": list(profiles),
            },
            args={"duration": duration, "rate_mbps": rate_mbps},
            seeds=list(seeds),
            params=params,
            merge={"kind": "detection_table"},
        )],
    )


def table1_plan(
    duration_tcp: float = 0.15,
    duration_udp: float = 0.08,
    ping_count: int = 50,
    repetitions: int = 2,
    seed: int = 1,
    params: Optional[Dict[str, Any]] = None,
) -> ExperimentPlan:
    """Table I as ONE plan: the TCP, UDP and RTT stages expand into a
    single farm batch (no idle shards between metrics), then combine
    into the ``values[metric][scenario]`` table."""
    scenarios = table1_scenarios()
    return ExperimentPlan(
        name="table1",
        description="Table I: average TCP/UDP/RTT per scenario, all "
                    "three metrics in one farm batch.",
        stages=[
            _tcp_stage(scenarios, duration_tcp, repetitions, seed, params),
            _udp_max_stage(scenarios, duration_udp, 8, seed, params),
            _rtt_stage(scenarios, ping_count, repetitions, seed, params),
        ],
        combine="metric_table",
    )


def smoke_plan(
    scenarios: Sequence[str] = ("linespeed", "central3"),
    count: int = 10,
    seed: int = 1,
) -> ExperimentPlan:
    """A seconds-scale plan for CI: two scenarios, one short RTT
    sequence each — enough to exercise expand/merge, caching and the
    serial == parallel contract without burning CI minutes."""
    return ExperimentPlan(
        name="smoke",
        description="CI smoke: tiny RTT grid proving plan expansion, "
                    "deterministic merge and serial == --jobs 2.",
        stages=[_rtt_stage(list(scenarios), count, 1, seed, None, name="smoke")],
    )


# ----------------------------------------------------------------------
# the registry of built-in plans + the CLI's --quick presets
# ----------------------------------------------------------------------
_BUILDERS = {
    "fig4": fig4_plan,
    "fig5": fig5_plan,
    "fig6": fig6_plan,
    "fig7": fig7_plan,
    "fig8": fig8_plan,
    "chaos": chaos_plan,
    "ctrlbft": ctrlbft_plan,
    "advbench": advbench_plan,
    "table1": table1_plan,
    "smoke": smoke_plan,
}

#: per-plan overrides applied by ``--quick`` (shorter durations / fewer
#: repetitions); the historical CLI presets, now in one place.
QUICK_SETTINGS: Dict[str, Dict[str, Any]] = {
    "fig4": {"duration": 0.06, "repetitions": 1},
    "fig5": {"duration": 0.04, "iterations": 6},
    "fig6": {"offered_mbps": (60, 180, 230, 270, 350), "duration": 0.04},
    "fig7": {"count": 20, "sequences": 1},
    "fig8": {"payload_sizes": (128, 512, 1470), "repetitions": 1},
    "chaos": {"duration": 0.04, "seeds": (1,)},
    "ctrlbft": {"variants": ("central3",), "duration": 0.04},
    "advbench": {"profiles": ("vigilant",), "duration": 0.024, "seeds": (1,)},
    "table1": {
        "duration_tcp": 0.06, "duration_udp": 0.04,
        "ping_count": 20, "repetitions": 1,
    },
    "smoke": {},
}

#: the full-size CLI settings that differ from the builder defaults
_FULL_SETTINGS: Dict[str, Dict[str, Any]] = {
    "chaos": {"duration": 0.06},
}


def builtin_plan_names() -> Tuple[str, ...]:
    return tuple(sorted(_BUILDERS))


def builtin_plan(name: str, quick: bool = False, **overrides: Any) -> ExperimentPlan:
    """Build a registered plan, optionally at the ``--quick`` presets.

    ``overrides`` win over the presets (the chaos CLI passes a
    ``--chaos`` schedule file and ``--variant`` through here).
    """
    builder = _BUILDERS.get(name)
    if builder is None:
        raise ValueError(
            f"unknown built-in plan {name!r}; known: {list(builtin_plan_names())}"
        )
    settings = dict(QUICK_SETTINGS[name] if quick else _FULL_SETTINGS.get(name, {}))
    settings.update(overrides)
    return builder(**settings)
