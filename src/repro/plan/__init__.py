"""Declarative experiment plans over the experiment farm.

``ExperimentPlan`` (one JSON file) composes scenarios from the registry,
parameter sweeps, seeds/repetitions, embedded fault schedules and obs
watch rules; ``expand()`` compiles it to farm work items and the merge
registry folds results back into figure records, bit-identically to the
historical per-figure wiring.
"""

from repro.plan.builtin import (
    QUICK_SETTINGS,
    builtin_plan,
    builtin_plan_names,
    chaos_plan,
    fig4_plan,
    fig5_plan,
    fig6_plan,
    fig7_plan,
    fig8_plan,
    jitter_params,
    smoke_plan,
    table1_plan,
)
from repro.plan.mergers import (
    Combiner,
    Merger,
    combiner_names,
    get_combiner,
    get_merger,
    merger_kinds,
)
from repro.plan.plan import PLAN_VERSION, ExperimentPlan, PlanStage

__all__ = [
    "PLAN_VERSION",
    "ExperimentPlan",
    "PlanStage",
    "Merger",
    "Combiner",
    "get_merger",
    "get_combiner",
    "merger_kinds",
    "combiner_names",
    "QUICK_SETTINGS",
    "builtin_plan",
    "builtin_plan_names",
    "chaos_plan",
    "fig4_plan",
    "fig5_plan",
    "fig6_plan",
    "fig7_plan",
    "fig8_plan",
    "jitter_params",
    "smoke_plan",
    "table1_plan",
]
