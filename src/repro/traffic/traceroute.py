"""Traceroute over the simulated network.

Classic increasing-TTL path discovery: probe i goes out with TTL=i and
the ICMP Time Exceeded error from the router that dropped it reveals hop
i; the run terminates when the destination itself answers (echo reply).

Works over :class:`~repro.net.legacy.LegacyRouter` chains (the switches
of the OpenFlow substrate are L2 devices and do not decrement TTL — as
in reality, they are invisible to traceroute).  Related-work context:
the paper cites secure-traceroute systems as the per-path alternative to
NetCo's redundancy; having the tool lets experiments show what a path
probe does and does not see through a combiner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.net.addresses import IpAddress, MacAddress
from repro.net.host import Host
from repro.net.legacy import ICMP_TIME_EXCEEDED
from repro.net.packet import Icmp, Packet


@dataclass
class TracerouteHop:
    """One discovered hop."""

    ttl: int
    address: Optional[IpAddress]  # None = no answer (a '*' line)
    rtt_s: Optional[float] = None

    @property
    def answered(self) -> bool:
        return self.address is not None


@dataclass
class TracerouteResult:
    hops: List[TracerouteHop] = field(default_factory=list)
    reached: bool = False

    def addresses(self) -> List[Optional[str]]:
        return [str(h.address) if h.address else None for h in self.hops]


class Traceroute:
    """Increasing-TTL prober bound to one host."""

    def __init__(
        self,
        host: Host,
        dst_mac: MacAddress,
        dst_ip: IpAddress,
        max_hops: int = 16,
        probe_timeout: float = 5e-3,
        ident: int = 7777,
    ) -> None:
        self.host = host
        self.dst_mac = MacAddress(dst_mac)
        self.dst_ip = IpAddress(dst_ip)
        self.max_hops = max_hops
        self.probe_timeout = probe_timeout
        self.ident = ident
        self.result = TracerouteResult()
        self._done_cb: Optional[Callable[[TracerouteResult], None]] = None
        self._current_ttl = 0
        self._probe_sent_at = 0.0
        self._answered = False
        host.bind_icmp(self._on_icmp)

    def close(self) -> None:
        self.host.enable_echo_responder()

    # ------------------------------------------------------------------
    def run(self, done_cb: Optional[Callable[[TracerouteResult], None]] = None) -> None:
        self._done_cb = done_cb
        self._next_probe()

    def _next_probe(self) -> None:
        self._current_ttl += 1
        if self._current_ttl > self.max_hops:
            self._finish()
            return
        self._answered = False
        self._probe_sent_at = self.host.sim.now
        probe = Packet.icmp_echo(
            src_mac=self.host.mac,
            dst_mac=self.dst_mac,
            src_ip=self.host.ip,
            dst_ip=self.dst_ip,
            ident=self.ident,
            seqno=self._current_ttl,
            ttl=self._current_ttl,
            ip_ident=self.host.next_ip_ident(),
        )
        self.host.send(probe)
        ttl_snapshot = self._current_ttl
        self.host.sim.schedule(
            self.probe_timeout, lambda: self._on_timeout(ttl_snapshot)
        )

    def _on_timeout(self, ttl: int) -> None:
        if self._answered or ttl != self._current_ttl:
            return
        self.result.hops.append(TracerouteHop(ttl=ttl, address=None))
        self._next_probe()

    # ------------------------------------------------------------------
    def _on_icmp(self, packet: Packet) -> None:
        icmp = packet.l4
        if not isinstance(icmp, Icmp):
            return
        if icmp.icmp_type == 8:  # echo request for us: stay a good citizen
            self.host._echo_responder(packet)
            return
        if self._answered:
            return
        now = self.host.sim.now
        if icmp.icmp_type == ICMP_TIME_EXCEEDED:
            self._answered = True
            self.result.hops.append(
                TracerouteHop(
                    ttl=self._current_ttl,
                    address=packet.ip.src,
                    rtt_s=now - self._probe_sent_at,
                )
            )
            self._next_probe()
        elif icmp.is_echo_reply and icmp.ident == self.ident:
            self._answered = True
            self.result.hops.append(
                TracerouteHop(
                    ttl=self._current_ttl,
                    address=packet.ip.src,
                    rtt_s=now - self._probe_sent_at,
                )
            )
            self.result.reached = True
            self._finish()

    def _finish(self) -> None:
        if self._done_cb is not None:
            self._done_cb(self.result)


def run_traceroute(
    network,
    src: Host,
    dst_mac: MacAddress,
    dst_ip: IpAddress,
    max_hops: int = 16,
    probe_timeout: float = 5e-3,
) -> TracerouteResult:
    """Convenience wrapper: run a traceroute to completion."""
    tracer = Traceroute(src, dst_mac, dst_ip, max_hops=max_hops,
                        probe_timeout=probe_timeout)
    tracer.run()
    network.run(until=network.sim.now + (max_hops + 1) * probe_timeout + 0.01)
    tracer.close()
    return tracer.result
