"""UDP constant-bit-rate traffic — the simulator's ``iperf -u``.

The sender paces fixed-size datagrams at a target application bitrate;
each payload carries a sequence number and the send timestamp, from which
the receiver computes loss, duplication (relevant in the Dup3/Dup5
scenarios, where every datagram arrives k times), reordering and RFC 3550
jitter — the same statistics iperf's UDP server reports.

Real iperf is bounded by per-datagram syscall cost at the sender, which
is why the paper's *UDP* Linespeed number (278 Mbit/s) sits far below its
*TCP* number (474 Mbit/s).  ``send_cost`` models that per-packet sender
CPU cost; see DESIGN.md's calibration notes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Set

from repro.net.host import Host
from repro.net.packet import Packet, PacketBatch
from repro.traffic.stats import JitterEstimator, ThroughputMeter

_HEADER = struct.Struct("!IQ")  # sequence number, send time in ns


def _encode_payload(seq: int, now: float, size: int) -> bytes:
    header = _HEADER.pack(seq & 0xFFFFFFFF, int(now * 1e9))
    if size < _HEADER.size:
        raise ValueError(f"payload size must be >= {_HEADER.size}, got {size}")
    return header + b"\x00" * (size - _HEADER.size)


def _decode_payload(payload: bytes) -> Optional[tuple]:
    if len(payload) < _HEADER.size:
        return None
    seq, send_ns = _HEADER.unpack_from(payload)
    return seq, send_ns / 1e9


@dataclass
class UdpFlowResult:
    """End-of-run report for one UDP flow (iperf server-side summary)."""

    sent: int
    received_unique: int
    duplicates: int
    reordered: int
    payload_size: int
    duration: float
    jitter_s: float

    @property
    def lost(self) -> int:
        return max(0, self.sent - self.received_unique)

    @property
    def loss_rate(self) -> float:
        return self.lost / self.sent if self.sent else 0.0

    @property
    def throughput_mbps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.received_unique * self.payload_size * 8.0 / self.duration / 1e6

    @property
    def offered_mbps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.sent * self.payload_size * 8.0 / self.duration / 1e6

    @property
    def jitter_ms(self) -> float:
        return self.jitter_s * 1e3


class UdpSender:
    """Paced CBR datagram source."""

    def __init__(
        self,
        host: Host,
        dst_mac,
        dst_ip,
        dport: int,
        rate_bps: float,
        payload_size: int = 1470,
        sport: int = 50000,
        send_cost: float = 0.0,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if payload_size < _HEADER.size:
            raise ValueError(
                f"payload size must be >= {_HEADER.size}, got {payload_size}"
            )
        self.host = host
        self.dst_mac = dst_mac
        self.dst_ip = dst_ip
        self.dport = dport
        self.sport = sport
        self.rate_bps = rate_bps
        self.payload_size = payload_size
        self.send_cost = send_cost
        self.sent = 0
        self._running = False
        self._end_time = 0.0

    @property
    def interval(self) -> float:
        """Inter-departure time: the slower of pacing and sender CPU."""
        return max(self.payload_size * 8.0 / self.rate_bps, self.send_cost)

    def start(self, duration: float, delay: float = 0.0) -> None:
        """Begin sending; stops once ``duration`` of sending has elapsed."""
        self._running = True
        sim = self.host.sim
        self._end_time = sim.now + delay + duration
        sim.schedule(delay, self._send_one)

    def stop(self) -> None:
        self._running = False

    def _send_one(self) -> None:
        sim = self.host.sim
        realm = sim.realm
        if realm is not None:
            self._send_train(realm)
            return
        if not self._running or sim.now >= self._end_time:
            self._running = False
            return
        payload = _encode_payload(self.sent, sim.now, self.payload_size)
        packet = Packet.udp(
            src_mac=self.host.mac,
            dst_mac=self.dst_mac,
            src_ip=self.host.ip,
            dst_ip=self.dst_ip,
            sport=self.sport,
            dport=self.dport,
            payload=payload,
            ident=self.host.next_ip_ident(),
        )
        self.host.send(packet)
        self.sent += 1
        sim.schedule(self.interval, self._send_one)

    def _send_train(self, realm) -> None:
        """Emit up to ``realm.train`` datagrams as one packet train.

        Replays :meth:`_send_one` exactly: sequence numbers, the
        ``t += interval`` float accumulation, per-packet IP idents drawn
        in order, and the per-packet ``t >= end_time`` stop condition all
        match the event-per-packet run bit for bit.  The train's jitter
        draws happen inside :meth:`Host.send_batch` in the same order.
        """
        sim = self.host.sim
        t = sim.now
        if not self._running or t >= self._end_time:
            self._running = False
            return
        host = self.host
        interval = self.interval
        end = self._end_time
        seqs = []
        ts_ns = []
        idents = []
        times = []
        for _ in range(realm.train):
            seqs.append(self.sent & 0xFFFFFFFF)  # what the wire carries
            ts_ns.append(int(t * 1e9))
            idents.append(host.next_ip_ident())
            times.append(t)
            self.sent += 1
            t = t + interval
            if t >= end:
                self._running = False
                break
        heads = [_HEADER.pack(s & 0xFFFFFFFF, ns) for s, ns in zip(seqs, ts_ns)]
        pad = b"\x00" * (self.payload_size - _HEADER.size)
        template = Packet.udp(
            src_mac=host.mac,
            dst_mac=self.dst_mac,
            src_ip=host.ip,
            dst_ip=self.dst_ip,
            sport=self.sport,
            dport=self.dport,
            payload=heads[0] + pad,
            ident=idents[0],
        )
        if len(seqs) == 1:
            # Trailing partial train of one: the plain path is cheaper
            # and trivially exact.
            host.send(template)
        else:
            batch = PacketBatch(template, heads, idents, seqs=seqs, ts_ns=ts_ns)
            realm.note_batch(batch.count)
            host.send_batch(batch, times)
        if self._running:
            sim.schedule_at(t, self._send_one)


class UdpReceiver:
    """Deduplicating iperf-style UDP sink with jitter/loss accounting."""

    def __init__(self, host: Host, port: int) -> None:
        self.host = host
        self.port = port
        self.payload_size = 0
        self.duplicates = 0
        self.reordered = 0
        self.highest_seq = -1
        self._seen: Set[int] = set()
        self.meter = ThroughputMeter()
        self.jitter = JitterEstimator()
        host.bind_udp(port, self._on_packet)
        host.bind_udp_batch(port, self._on_batch_packet)

    def close(self) -> None:
        self.host.unbind_udp(self.port)

    def _on_packet(self, packet: Packet) -> None:
        decoded = _decode_payload(packet.payload)
        if decoded is None:
            return
        seq, send_time = decoded
        if seq in self._seen:
            self.duplicates += 1
            return
        self._seen.add(seq)
        now = self.host.sim.now
        self.payload_size = max(self.payload_size, len(packet.payload))
        if seq < self.highest_seq:
            self.reordered += 1
        self.highest_seq = max(self.highest_seq, seq)
        self.meter.observe(len(packet.payload), now)
        self.jitter.observe(send_time, now)

    def _on_batch_packet(self, batch, i: int) -> None:
        """:meth:`_on_packet` for one train packet, without decoding bytes.

        ``batch.seqs``/``batch.ts_ns`` hold exactly what
        :func:`_encode_payload` wrote (``seq & 0xFFFFFFFF``,
        ``int(t * 1e9)``), so dedup keys, reorder counts, the throughput
        meter and the RFC 3550 jitter estimator see identical inputs.
        """
        seq = batch.seqs[i]
        if seq in self._seen:
            self.duplicates += 1
            return
        self._seen.add(seq)
        now = self.host.sim.now
        size = batch.payload_size
        if size > self.payload_size:
            self.payload_size = size
        if seq < self.highest_seq:
            self.reordered += 1
        else:
            self.highest_seq = seq
        self.meter.observe(size, now)
        self.jitter.observe(batch.ts_ns[i] / 1e9, now)

    @property
    def received_unique(self) -> int:
        return len(self._seen)

    def received_sequences(self) -> Set[int]:
        """Set of sequence numbers delivered at least once (gap analysis)."""
        return set(self._seen)

    def result(self, sender: UdpSender, duration: float) -> UdpFlowResult:
        return UdpFlowResult(
            sent=sender.sent,
            received_unique=self.received_unique,
            duplicates=self.duplicates,
            reordered=self.reordered,
            payload_size=sender.payload_size,
            duration=duration,
            jitter_s=self.jitter.jitter,
        )
