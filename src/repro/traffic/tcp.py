"""A Reno-style TCP implementation over the simulated network.

This is the substrate for the paper's TCP throughput measurements
(Figure 4, Table I).  It implements the mechanisms those measurements
exercise:

* three-way handshake;
* sliding window limited by min(cwnd, receiver window);
* slow start and congestion avoidance (RFC 5681);
* fast retransmit on three duplicate ACKs, NewReno-style fast recovery
  with partial-ACK retransmission;
* retransmission timeout with Jacobson/Karels RTT estimation, Karn's
  algorithm and exponential backoff;
* a deduplicating receiver that ACKs immediately on out-of-order or
  duplicate segments — which is precisely why plain duplication (Dup3/
  Dup5) hurts TCP: every duplicated segment generates duplicate ACKs and
  spurious fast retransmits, while the combiner (Central3/Central5)
  removes duplicates before they reach the receiver.

The sender streams an unbounded byte source for a fixed duration, like
``iperf`` in its default TCP mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.host import Host
from repro.net.packet import (
    Packet,
    TCP_ACK,
    TCP_DSACK,
    TCP_FIN,
    TCP_SYN,
    Tcp,
)
from repro.sim import Timer

MSS_DEFAULT = 1460


@dataclass
class TcpFlowResult:
    """End-of-run report for one TCP bulk transfer."""

    bytes_acked: int
    duration: float
    retransmits: int
    timeouts: int
    fast_retransmits: int
    rtt_samples: int
    srtt_s: float

    @property
    def throughput_mbps(self) -> float:
        if self.duration <= 0:
            return 0.0
        return self.bytes_acked * 8.0 / self.duration / 1e6


class TcpReceiver:
    """Passive endpoint: accepts one connection, ACKs everything."""

    def __init__(self, host: Host, port: int) -> None:
        self.host = host
        self.port = port
        self.iss = 1_000_000  # receiver's initial sequence number
        self.rcv_nxt: Optional[int] = None
        self.snd_nxt = self.iss
        self.peer_mac = None
        self.peer_ip = None
        self.peer_port: Optional[int] = None
        self.bytes_in_order = 0
        self.segments_received = 0
        self.duplicate_segments = 0
        self.out_of_order_segments = 0
        self._ooo: Dict[int, int] = {}  # seq -> payload length
        host.bind_tcp(port, self._on_segment)

    def close(self) -> None:
        self.host.unbind_tcp(self.port)

    # ------------------------------------------------------------------
    def _on_segment(self, packet: Packet) -> None:
        _eth, _vlan, ip, tcp, _payload = packet.fields()  # read-only access
        if not isinstance(tcp, Tcp) or ip is None:
            return
        if tcp.flag(TCP_SYN):
            self._on_syn(packet, tcp)
            return
        if self.rcv_nxt is None or tcp.sport != self.peer_port:
            return  # not our connection
        self.segments_received += 1
        length = len(packet.payload)
        if tcp.flag(TCP_FIN):
            if tcp.seq == self.rcv_nxt:  # in-order FIN (ignore repeats)
                self.rcv_nxt += 1
            self._send_ack(dsack=False)
            return
        if length == 0:
            return  # pure ACK from peer; nothing to do
        seq = tcp.seq
        dsack = False
        if seq == self.rcv_nxt:
            self.rcv_nxt += length
            self.bytes_in_order += length
            self._drain_ooo()
        elif seq > self.rcv_nxt:
            if seq not in self._ooo:
                self._ooo[seq] = length
            self.out_of_order_segments += 1
        else:
            # Entirely below rcv_nxt: a duplicate delivery or spurious
            # retransmission.  RFC 5681 says ACK immediately; RFC 2883
            # says report the duplicate in a DSACK block, which lets the
            # sender tell "network duplicated this" apart from "loss".
            self.duplicate_segments += 1
            dsack = True
        self._send_ack(dsack=dsack)

    def _on_syn(self, packet: Packet, tcp: Tcp) -> None:
        if self.rcv_nxt is not None and tcp.sport != self.peer_port:
            return  # second connection attempt: ignore
        first_syn = self.rcv_nxt is None
        eth, _vlan, ip, _l4, _payload = packet.fields()  # read-only access
        self.peer_mac = eth.src
        self.peer_ip = ip.src
        self.peer_port = tcp.sport
        self.rcv_nxt = tcp.seq + 1
        if first_syn:
            self.snd_nxt = self.iss + 1
        synack = Packet.tcp(
            src_mac=self.host.mac,
            dst_mac=self.peer_mac,
            src_ip=self.host.ip,
            dst_ip=self.peer_ip,
            sport=self.port,
            dport=self.peer_port,
            seq=self.iss,
            ack=self.rcv_nxt,
            flags=TCP_SYN | TCP_ACK,
            ident=self.host.next_ip_ident(),
        )
        self.host.send(synack)

    def _drain_ooo(self) -> None:
        while self.rcv_nxt in self._ooo:
            length = self._ooo.pop(self.rcv_nxt)
            self.rcv_nxt += length
            self.bytes_in_order += length

    def _send_ack(self, dsack: bool = False) -> None:
        flags = TCP_ACK | (TCP_DSACK if dsack else 0)
        # The window field doubles as an ACK-emission counter.  A SACK-
        # capable sender only treats an ACK as a *duplicate ACK* when it
        # carries new SACK information (RFC 5681/6675); network-duplicated
        # copies of one ACK carry none.  Distinct emissions get distinct
        # counters, so loss-induced duplicate ACKs still register.
        self._ack_emissions = (getattr(self, "_ack_emissions", 0) + 1) & 0xFFFF
        ack = Packet.tcp(
            src_mac=self.host.mac,
            dst_mac=self.peer_mac,
            src_ip=self.host.ip,
            dst_ip=self.peer_ip,
            sport=self.port,
            dport=self.peer_port,
            seq=self.snd_nxt,
            ack=self.rcv_nxt,
            flags=flags,
            window=self._ack_emissions,
            ident=self.host.next_ip_ident(),
        )
        self.host.send(ack)


class TcpSender:
    """Active endpoint: connects and streams bytes for a duration."""

    def __init__(
        self,
        host: Host,
        dst_mac,
        dst_ip,
        dport: int,
        sport: int = 40000,
        mss: int = MSS_DEFAULT,
        init_cwnd_segments: int = 4,
        min_rto: float = 0.02,
        max_rto: float = 1.0,
        rwnd: int = 65535,
        total_bytes: Optional[int] = None,
    ) -> None:
        self.host = host
        self.dst_mac = dst_mac
        self.dst_ip = dst_ip
        self.dport = dport
        self.sport = sport
        self.mss = mss
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.rwnd = rwnd

        # None = unbounded iperf-style stream; an int = send exactly
        # this many bytes, then close with FIN.
        self.total_bytes = total_bytes
        self.fin_sent = False
        self.fin_acked = False

        self.iss = 0
        self.snd_una = self.iss
        self.snd_nxt = self.iss
        self.cwnd = init_cwnd_segments * mss
        self.ssthresh = 1 << 30
        self.dupacks = 0
        self.in_recovery = False
        self.recover = 0
        self.connected = False
        self._running = False
        self._end_time = 0.0
        self._done_cb = None

        # RTT estimation (Jacobson/Karels + Karn)
        self.srtt: Optional[float] = None
        self.rttvar = 0.0
        self.rto = 0.2
        self._timed_seq: Optional[int] = None
        self._timed_at = 0.0

        self.retransmits = 0
        self.timeouts = 0
        self.fast_retransmits = 0
        self.rtt_samples = 0
        self._last_ack_emission = -1

        self._rto_timer = Timer(host.sim, self._on_rto)
        host.bind_tcp(sport, self._on_segment)

    def close(self) -> None:
        self.host.unbind_tcp(self.sport)
        self._rto_timer.cancel()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def start(self, duration: float, delay: float = 0.0, done_cb=None) -> None:
        """Connect, then stream data until ``duration`` elapses."""
        self._running = True
        self._done_cb = done_cb
        sim = self.host.sim
        self._end_time = sim.now + delay + duration
        sim.schedule(delay, self._send_syn)

    def result(self, duration: float) -> TcpFlowResult:
        handshake = 1 if self.connected else 0
        fin = 1 if self.fin_acked else 0
        return TcpFlowResult(
            bytes_acked=max(0, self.snd_una - self.iss - handshake - fin),
            duration=duration,
            retransmits=self.retransmits,
            timeouts=self.timeouts,
            fast_retransmits=self.fast_retransmits,
            rtt_samples=self.rtt_samples,
            srtt_s=self.srtt or 0.0,
        )

    @property
    def flight_size(self) -> int:
        return self.snd_nxt - self.snd_una

    # ------------------------------------------------------------------
    # connection setup
    # ------------------------------------------------------------------
    def _send_syn(self) -> None:
        if not self._running:
            return
        syn = self._make_segment(self.iss, b"", TCP_SYN)
        self.snd_nxt = self.iss + 1
        self.host.send(syn)
        self._rto_timer.start(self.rto)

    # ------------------------------------------------------------------
    # segment receive path (SYN-ACK and ACKs)
    # ------------------------------------------------------------------
    def _on_segment(self, packet: Packet) -> None:
        tcp = packet.fields()[3]  # read-only access
        if not isinstance(tcp, Tcp) or not tcp.flag(TCP_ACK):
            return
        if not self.connected:
            if tcp.flag(TCP_SYN) and tcp.ack == self.iss + 1:
                self.connected = True
                self.snd_una = tcp.ack
                self._rcv_nxt_peer = tcp.seq + 1
                self._rto_timer.cancel()
                self._send_pure_ack()
                self._try_send()
            return
        emission = tcp.window
        novel = emission != self._last_ack_emission
        self._last_ack_emission = emission
        self._on_ack(tcp.ack, dsack=tcp.flag(TCP_DSACK), novel=novel)

    def _on_ack(self, ack: int, dsack: bool = False, novel: bool = True) -> None:
        if ack > self.snd_una:
            self._rtt_sample_maybe(ack)
            if self.in_recovery:
                if ack >= self.recover:
                    # Full acknowledgement: leave fast recovery.
                    self.in_recovery = False
                    self.cwnd = self.ssthresh
                    self.dupacks = 0
                else:
                    # NewReno partial ACK: retransmit the next hole and
                    # deflate by the amount acknowledged.
                    acked = ack - self.snd_una
                    self.snd_una = ack
                    self._retransmit_front()
                    self.cwnd = max(self.mss, self.cwnd - acked + self.mss)
                    self._restart_rto()
                    self._try_send()
                    return
            else:
                if self.cwnd < self.ssthresh:
                    self.cwnd += self.mss  # slow start
                else:
                    self.cwnd += max(1, self.mss * self.mss // self.cwnd)
                self.dupacks = 0
            self.snd_una = ack
            if self.fin_sent and ack == self.snd_nxt:
                self.fin_acked = True
                self._rto_timer.cancel()
                self._finish()
                return
            if self.flight_size > 0:
                self._restart_rto()
            else:
                self._rto_timer.cancel()
            self._try_send()
        elif ack == self.snd_una and self.flight_size > 0:
            if not novel:
                # A network-duplicated copy of an ACK we already saw:
                # carries no new SACK information, so it is not a
                # duplicate ACK in the RFC 6675 sense.
                return
            if dsack and not self.in_recovery:
                # The peer reported a DSACK: the network duplicated a
                # segment we already delivered.  Not a loss signal.
                return
            self.dupacks += 1
            if self.in_recovery:
                self.cwnd += self.mss  # inflate during recovery
                self._try_send()
            elif self.dupacks == 3:
                self._enter_fast_recovery()

    def _enter_fast_recovery(self) -> None:
        self.ssthresh = max(self.flight_size // 2, 2 * self.mss)
        self.recover = self.snd_nxt
        self.in_recovery = True
        self.fast_retransmits += 1
        self._retransmit_front()
        self.cwnd = self.ssthresh + 3 * self.mss
        self._restart_rto()

    # ------------------------------------------------------------------
    # send path
    # ------------------------------------------------------------------
    def _try_send(self) -> None:
        if not self._running or not self.connected:
            return
        if self.host.sim.now >= self._end_time:
            self._finish()
            return
        window = min(self.cwnd, self.rwnd)
        while not self.fin_sent and self.flight_size + 1 <= window:
            if self.host.sim.now >= self._end_time:
                self._finish()
                return
            length = self.mss
            if self.total_bytes is not None:
                remaining = self.total_bytes - (self.snd_nxt - self.iss - 1)
                if remaining <= 0:
                    self._send_fin()
                    break
                length = min(length, remaining)
            if self.flight_size + length > window:
                break
            self._emit_segment(self.snd_nxt, length)
            self.snd_nxt += length
        if self.flight_size > 0 and not self._rto_timer.running:
            self._rto_timer.start(self.rto)

    def _send_fin(self) -> None:
        from repro.net.packet import TCP_FIN

        self.fin_sent = True
        fin = self._make_segment(self.snd_nxt, b"", TCP_ACK | TCP_FIN)
        self.snd_nxt += 1  # FIN consumes one sequence number
        self.host.send(fin)
        self._rto_timer.start(self.rto)

    def _emit_segment(self, seq: int, length: int) -> None:
        payload = b"\x00" * length
        segment = self._make_segment(seq, payload, TCP_ACK)
        self.host.send(segment)
        if self._timed_seq is None:
            self._timed_seq = seq + length
            self._timed_at = self.host.sim.now

    def _retransmit_front(self) -> None:
        self.retransmits += 1
        # Karn: never time a retransmitted segment.
        if self._timed_seq is not None and self._timed_seq <= self.snd_una + self.mss:
            self._timed_seq = None
        outstanding = self.snd_nxt - self.snd_una
        if outstanding <= 0:
            return
        if self.fin_sent and outstanding == 1:
            from repro.net.packet import TCP_FIN

            self.host.send(self._make_segment(self.snd_una, b"", TCP_ACK | TCP_FIN))
            return
        fin_in_flight = 1 if self.fin_sent else 0
        length = min(self.mss, outstanding - fin_in_flight)
        if length <= 0:
            return
        payload = b"\x00" * length
        segment = self._make_segment(self.snd_una, payload, TCP_ACK)
        self.host.send(segment)

    def _send_pure_ack(self) -> None:
        ack = self._make_segment(self.snd_nxt, b"", TCP_ACK)
        self.host.send(ack)

    def _make_segment(self, seq: int, payload: bytes, flags: int) -> Packet:
        ack_field = getattr(self, "_rcv_nxt_peer", 0)
        return Packet.tcp(
            src_mac=self.host.mac,
            dst_mac=self.dst_mac,
            src_ip=self.host.ip,
            dst_ip=self.dst_ip,
            sport=self.sport,
            dport=self.dport,
            seq=seq,
            ack=ack_field,
            flags=flags,
            payload=payload,
            ident=self.host.next_ip_ident(),
        )

    # ------------------------------------------------------------------
    # timers & RTT estimation
    # ------------------------------------------------------------------
    def _on_rto(self) -> None:
        if not self._running:
            return
        if not self.connected:
            # SYN lost: retry the handshake.
            if self.host.sim.now < self._end_time:
                self.rto = min(self.rto * 2, self.max_rto)
                self._send_syn()
            return
        if self.flight_size <= 0:
            return
        self.timeouts += 1
        self.ssthresh = max(self.flight_size // 2, 2 * self.mss)
        self.cwnd = self.mss
        self.in_recovery = False
        self.dupacks = 0
        self.rto = min(self.rto * 2, self.max_rto)
        self._timed_seq = None
        self._retransmit_front()
        self._rto_timer.start(self.rto)

    def _restart_rto(self) -> None:
        self._rto_timer.start(self.rto)

    def _rtt_sample_maybe(self, ack: int) -> None:
        if self._timed_seq is None or ack < self._timed_seq:
            return
        sample = self.host.sim.now - self._timed_at
        self._timed_seq = None
        self.rtt_samples += 1
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(self.max_rto, max(self.min_rto, self.srtt + 4 * self.rttvar))

    def _finish(self) -> None:
        if not self._running:
            return
        self._running = False
        self._rto_timer.cancel()
        if self._done_cb is not None:
            self._done_cb()
