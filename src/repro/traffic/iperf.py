"""iperf-style measurement harness over a simulated network.

Mirrors the paper's methodology (Section V-A): UDP runs with the ``-u``
flag and a ``-b`` target bitrate, "adjusting the -b flag value until a
maximum is reached" subject to a loss-rate ceiling; TCP runs measure bulk
throughput; ping runs measure RTT.  Runs are repeated and averaged, and
directions can be reversed as in the paper's 10+10 design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.net.host import Host
from repro.net.topology import Network
from repro.traffic.ping import Pinger, PingResult
from repro.traffic.tcp import TcpFlowResult, TcpReceiver, TcpSender
from repro.traffic.udp import UdpFlowResult, UdpReceiver, UdpSender

#: grace period after the send window for in-flight packets to drain
DRAIN_TIME = 20e-3


@dataclass
class PathEndpoints:
    """The measurement view of a scenario: a network and two hosts."""

    network: Network
    client: Host
    server: Host

    def reversed(self) -> "PathEndpoints":
        return PathEndpoints(self.network, self.server, self.client)


def run_udp_flow(
    path: PathEndpoints,
    rate_bps: float,
    duration: float = 0.2,
    payload_size: int = 1470,
    send_cost: float = 0.0,
    dport: int = 5001,
    warmup: float = 1e-3,
) -> UdpFlowResult:
    """One ``iperf -u -b rate`` run from client to server."""
    net = path.network
    receiver = UdpReceiver(path.server, dport)
    sender = UdpSender(
        path.client,
        dst_mac=path.server.mac,
        dst_ip=path.server.ip,
        dport=dport,
        rate_bps=rate_bps,
        payload_size=payload_size,
        send_cost=send_cost,
    )
    sender.start(duration, delay=warmup)
    net.run(until=net.sim.now + warmup + duration + DRAIN_TIME)
    result = receiver.result(sender, duration)
    receiver.close()
    return result


def run_tcp_flow(
    path: PathEndpoints,
    duration: float = 0.2,
    dport: int = 5001,
    mss: int = 1460,
    min_rto: float = 0.005,
    warmup: float = 1e-3,
) -> TcpFlowResult:
    """One iperf TCP bulk-transfer run from client to server."""
    net = path.network
    receiver = TcpReceiver(path.server, dport)
    sender = TcpSender(
        path.client,
        dst_mac=path.server.mac,
        dst_ip=path.server.ip,
        dport=dport,
        mss=mss,
        min_rto=min_rto,
    )
    sender.start(duration, delay=warmup)
    net.run(until=net.sim.now + warmup + duration + DRAIN_TIME)
    result = sender.result(duration)
    sender.close()
    receiver.close()
    return result


def run_ping(
    path: PathEndpoints,
    count: int = 50,
    interval: float = 1e-3,
    payload_size: int = 56,
) -> PingResult:
    """One ``ping -c count`` run from client to server."""
    net = path.network
    pinger = Pinger(
        path.client,
        dst_mac=path.server.mac,
        dst_ip=path.server.ip,
        payload_size=payload_size,
    )
    pinger.run(count, interval=interval)
    net.run(until=net.sim.now + count * interval + DRAIN_TIME)
    result = pinger.result()
    pinger.close()
    return result


def find_max_udp_rate(
    path_factory: Callable[[], PathEndpoints],
    loss_target: float = 0.005,
    rate_lo: float = 10e6,
    rate_hi: float = 1e9,
    iterations: int = 9,
    duration: float = 0.15,
    payload_size: int = 1470,
    send_cost: float = 0.0,
) -> Tuple[float, UdpFlowResult]:
    """Binary-search the highest offered rate with loss below the target.

    This is the paper's "adjusting the -b flag value until a maximum is
    reached" with the Figure 5 criterion "loss rates below 0.5%".  Each
    probe uses a *fresh* scenario instance so probes don't contaminate
    each other.
    """
    best_rate = rate_lo
    best_result: Optional[UdpFlowResult] = None
    lo, hi = rate_lo, rate_hi
    for _ in range(iterations):
        probe = (lo + hi) / 2.0
        result = run_udp_flow(
            path_factory(),
            rate_bps=probe,
            duration=duration,
            payload_size=payload_size,
            send_cost=send_cost,
        )
        if result.loss_rate <= loss_target:
            best_rate, best_result = probe, result
            lo = probe
        else:
            hi = probe
    if best_result is None:
        best_result = run_udp_flow(
            path_factory(),
            rate_bps=rate_lo,
            duration=duration,
            payload_size=payload_size,
            send_cost=send_cost,
        )
    return best_rate, best_result
