"""Traffic generation and measurement (iperf/ping analogues)."""

from repro.traffic.iperf import (
    DRAIN_TIME,
    PathEndpoints,
    find_max_udp_rate,
    run_ping,
    run_tcp_flow,
    run_udp_flow,
)
from repro.traffic.ping import Pinger, PingResult
from repro.traffic.stats import (
    JitterEstimator,
    SummaryStats,
    ThroughputMeter,
    mbits,
)
from repro.traffic.tcp import TcpFlowResult, TcpReceiver, TcpSender
from repro.traffic.traceroute import Traceroute, TracerouteHop, TracerouteResult, run_traceroute
from repro.traffic.udp import UdpFlowResult, UdpReceiver, UdpSender

__all__ = [
    "DRAIN_TIME",
    "PathEndpoints",
    "find_max_udp_rate",
    "run_ping",
    "run_tcp_flow",
    "run_udp_flow",
    "Pinger",
    "PingResult",
    "JitterEstimator",
    "SummaryStats",
    "ThroughputMeter",
    "mbits",
    "TcpFlowResult",
    "TcpReceiver",
    "TcpSender",
    "Traceroute",
    "TracerouteHop",
    "TracerouteResult",
    "run_traceroute",
    "UdpFlowResult",
    "UdpReceiver",
    "UdpSender",
]
