"""Measurement primitives: throughput, loss, RTT and RFC 3550 jitter.

These mirror what the paper's tools report: *iperf* throughput and loss
percentages, *iperf -u* jitter (the RFC 3550 interarrival-jitter
estimator), and *ping* RTT statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional


def mbits(value_bytes: float, seconds: float) -> float:
    """Convert a byte count over a window to Mbit/s."""
    if seconds <= 0:
        return 0.0
    return value_bytes * 8.0 / seconds / 1e6


@dataclass
class SummaryStats:
    """Mean/min/max/stdev/percentiles over a sample list."""

    samples: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.samples.append(value)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    @property
    def stdev(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self.samples) / (n - 1))

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, p in [0, 100]."""
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "stdev": self.stdev,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
        }


class JitterEstimator:
    """RFC 3550 interarrival jitter: J += (|D(i-1,i)| - J) / 16.

    ``D`` compares the spacing of receipt times against the spacing of
    send times (send timestamps ride in the measurement payload, exactly
    as iperf does it).
    """

    def __init__(self) -> None:
        self._prev_send: Optional[float] = None
        self._prev_recv: Optional[float] = None
        self.jitter = 0.0
        self.samples = 0

    def observe(self, send_time: float, recv_time: float) -> None:
        if self._prev_send is not None and self._prev_recv is not None:
            transit_delta = (recv_time - self._prev_recv) - (send_time - self._prev_send)
            self.jitter += (abs(transit_delta) - self.jitter) / 16.0
            self.samples += 1
        self._prev_send = send_time
        self._prev_recv = recv_time


class ThroughputMeter:
    """Byte counting over an observation window."""

    def __init__(self) -> None:
        self.bytes = 0
        self.packets = 0
        self.first_time: Optional[float] = None
        self.last_time: Optional[float] = None

    def observe(self, nbytes: int, now: float) -> None:
        self.bytes += nbytes
        self.packets += 1
        if self.first_time is None:
            self.first_time = now
        self.last_time = now

    def mbps(self, window: Optional[float] = None) -> float:
        """Throughput in Mbit/s, over ``window`` or first-to-last arrival."""
        if window is not None:
            return mbits(self.bytes, window)
        if self.first_time is None or self.last_time is None:
            return 0.0
        return mbits(self.bytes, self.last_time - self.first_time)
