"""ICMP echo measurement — the simulator's ``ping``.

Sends a train of echo requests at a fixed interval and records per-reply
RTTs; hosts answer echo requests automatically (see
:class:`repro.net.host.Host`).  Duplicate replies (Dup3/Dup5 deliver
every reply k times) are counted separately, as ``ping -c`` would report
``(DUP!)`` lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.net.host import Host
from repro.net.packet import ICMP_ECHO_REQUEST, Icmp, Packet
from repro.traffic.stats import SummaryStats


@dataclass
class PingResult:
    """Summary of one ping run (one ``ping -c count`` invocation)."""

    sent: int
    received: int
    duplicates: int
    rtts: SummaryStats = field(default_factory=SummaryStats)

    @property
    def loss_rate(self) -> float:
        return 1.0 - self.received / self.sent if self.sent else 0.0

    @property
    def avg_rtt_ms(self) -> float:
        return self.rtts.mean * 1e3

    @property
    def min_rtt_ms(self) -> float:
        return self.rtts.minimum * 1e3

    @property
    def max_rtt_ms(self) -> float:
        return self.rtts.maximum * 1e3


class Pinger:
    """Echo-request generator + reply collector on one host."""

    _next_ident = 1

    def __init__(
        self,
        host: Host,
        dst_mac,
        dst_ip,
        payload_size: int = 56,
    ) -> None:
        self.host = host
        self.dst_mac = dst_mac
        self.dst_ip = dst_ip
        self.payload_size = payload_size
        self.ident = Pinger._next_ident
        Pinger._next_ident += 1
        self.sent = 0
        self.received = 0
        self.duplicates = 0
        self.rtts = SummaryStats()
        self._send_times: Dict[int, float] = {}
        self._answered: set = set()
        self._count = 0
        self._interval = 0.0
        self._done_cb: Optional[Callable[[], None]] = None
        # Intercept replies while preserving the host's request responder.
        host.bind_icmp(self._on_icmp)

    def close(self) -> None:
        self.host.enable_echo_responder()

    # ------------------------------------------------------------------
    def run(
        self,
        count: int,
        interval: float = 1e-3,
        delay: float = 0.0,
        done_cb: Optional[Callable[[], None]] = None,
    ) -> None:
        """Schedule ``count`` echo requests spaced ``interval`` apart."""
        self._count = count
        self._interval = interval
        self._done_cb = done_cb
        self.host.sim.schedule(delay, self._send_next)

    def _send_next(self) -> None:
        if self.sent >= self._count:
            return
        seqno = self.sent
        packet = Packet.icmp_echo(
            src_mac=self.host.mac,
            dst_mac=self.dst_mac,
            src_ip=self.host.ip,
            dst_ip=self.dst_ip,
            ident=self.ident,
            seqno=seqno,
            payload=b"\x00" * self.payload_size,
            ip_ident=self.host.next_ip_ident(),
        )
        self._send_times[seqno] = self.host.sim.now
        self.host.send(packet)
        self.sent += 1
        if self.sent < self._count:
            self.host.sim.schedule(self._interval, self._send_next)
        elif self._done_cb is not None:
            # Completion callback fires after a grace period of one
            # interval, giving the last reply time to arrive.
            self.host.sim.schedule(self._interval, self._done_cb)

    # ------------------------------------------------------------------
    def _on_icmp(self, packet: Packet) -> None:
        icmp = packet.l4
        if not isinstance(icmp, Icmp):
            return
        if icmp.icmp_type == ICMP_ECHO_REQUEST:
            self.host._echo_responder(packet)
            return
        if not icmp.is_echo_reply or icmp.ident != self.ident:
            return
        seqno = icmp.seqno
        if seqno in self._answered:
            self.duplicates += 1
            return
        sent_at = self._send_times.get(seqno)
        if sent_at is None:
            return
        self._answered.add(seqno)
        self.received += 1
        self.rtts.add(self.host.sim.now - sent_at)

    def result(self) -> PingResult:
        return PingResult(
            sent=self.sent,
            received=self.received,
            duplicates=self.duplicates,
            rtts=self.rtts,
        )
