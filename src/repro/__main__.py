"""``python -m repro`` — regenerate the paper's experiments from the CLI."""

import sys

from repro.analysis.cli import main

sys.exit(main())
