"""Orchestrate the live UDP demo and its DES twin, and compare verdicts.

``python -m repro live demo`` runs the Figure 3 vote over real sockets:
the orchestrator paces an iperf-style CBR stream, fans each datagram out
to ``k`` switch processes, the switch processes forward branch-tagged
copies to a compare process, and the compare process votes, quarantines
and releases with the exact code the simulator runs.  The same
packet-index fault schedule is then replayed through the DES backend
(:func:`repro.live.twin.des_twin_run`) and the two verdicts — alarms,
transitions, released-sequence fingerprint — are diffed.  CI gates on
that diff being empty (see ``transport-smoke`` in the workflow).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import socket
from typing import Any, Dict, List, Optional

from repro.live.procs import HOST, compare_main, switch_main
from repro.live.schedule import LiveSchedule, default_schedule
from repro.live.twin import des_twin_run
from repro.live.verdict import Verdict, verdicts_match
from repro.net.addresses import IpAddress, MacAddress
from repro.net.packet import Packet
from repro.traffic.udp import _encode_payload
from repro.transport import ROLE_FANOUT, SessionSpec
from repro.transport.udp import UdpTransport
from repro.transport.wire import MSG_BYE, MSG_HELLO

SCOPE = "sA"
_SRC_MAC, _DST_MAC = MacAddress(0x02_00_00_00_00_01), MacAddress(0x02_00_00_00_00_02)
_SRC_IP, _DST_IP = IpAddress("10.0.0.1"), IpAddress("10.0.0.2")


def _free_udp_ports(count: int) -> List[int]:
    socks, ports = [], []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.bind((HOST, 0))
            socks.append(sock)
            ports.append(sock.getsockname()[1])
    finally:
        for sock in socks:
            sock.close()
    return ports


def build_datagram(seq: int, payload_size: int) -> Packet:
    """The CBR probe for ``seq`` — deterministic bytes (timestamp 0), so
    every branch's copy of a sequence number is bit-identical."""
    return Packet.udp(
        src_mac=_SRC_MAC,
        dst_mac=_DST_MAC,
        src_ip=_SRC_IP,
        dst_ip=_DST_IP,
        sport=50000,
        dport=5001,
        payload=_encode_payload(seq, 0.0, payload_size),
    )


async def _source_async(
    source_port: int,
    compare_port: int,
    switch_ports: List[int],
    packets: int,
    interval: float,
    payload_size: int,
    ready_timeout: float,
) -> Dict[str, Any]:
    k = len(switch_ports)
    transport = UdpTransport((HOST, source_port), name="live.source")
    await transport.start()
    ready: set = set()
    all_ready = asyncio.Event()

    def on_control(
        mtype: int, scope: str, branch: Optional[int], _addr: tuple
    ) -> None:
        if mtype == MSG_HELLO:
            ready.add((scope, branch))
            if len(ready) >= k + 1:  # k switches + the compare
                all_ready.set()

    transport.set_control_handler(on_control)
    try:
        await asyncio.wait_for(all_ready.wait(), timeout=ready_timeout)
    except asyncio.TimeoutError:
        transport.close()
        raise RuntimeError(
            f"live demo: workers not ready after {ready_timeout}s "
            f"(greeted: {sorted(ready)})"
        )

    fans = [
        transport.session(
            SessionSpec(SCOPE, ROLE_FANOUT, branch),
            remote=(HOST, switch_ports[branch]),
        )
        for branch in range(k)
    ]
    loop = asyncio.get_running_loop()
    start = loop.time() + 0.05
    for seq in range(packets):
        delay = start + seq * interval - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        packet = build_datagram(seq, payload_size)
        for session in fans:
            session.send(packet)
    # Redundant BYEs: UDP gives no delivery guarantee and the compare's
    # hard deadline is the only fallback if all three are lost.
    for _ in range(3):
        transport.send_control(MSG_BYE, SCOPE, remote=(HOST, compare_port))
        await asyncio.sleep(0.05)
    stats = transport.stats()
    transport.close()
    return {"sent": packets, "transport_stats": stats}


def run_live_demo(
    packets: int = 300,
    interval: float = 0.01,
    payload_size: int = 256,
    schedule: Optional[LiveSchedule] = None,
    k: int = 3,
    miss_threshold: int = 8,
    probation_clean_target: int = 12,
    live_buffer_timeout: float = 0.15,
    des_buffer_timeout: float = 2e-3,
    seed: int = 0,
    skip_des: bool = False,
    ready_timeout: float = 15.0,
) -> Dict[str, Any]:
    """Run the live demo (and, unless skipped, its DES twin); return the
    comparison report.  ``report["match"]`` is the CI gate."""
    if schedule is None:
        schedule = default_schedule(packets)
    schedule.validate()
    ports = _free_udp_ports(2 + k)
    source_port, compare_port, switch_ports = ports[0], ports[1], ports[2:]
    send_time = packets * interval
    deadline = send_time + ready_timeout + 30.0

    ctx = multiprocessing.get_context("spawn")
    result_q = ctx.Queue()
    compare_proc = ctx.Process(
        target=compare_main,
        args=(
            {
                "scope": SCOPE,
                "port": compare_port,
                "source_port": source_port,
                "k": k,
                "packets": packets,
                "buffer_timeout": live_buffer_timeout,
                "miss_threshold": miss_threshold,
                "probation_clean_target": probation_clean_target,
                "deadline_s": deadline,
            },
            result_q,
        ),
        daemon=True,
    )
    switch_procs = [
        ctx.Process(
            target=switch_main,
            args=(
                {
                    "scope": SCOPE,
                    "branch": branch,
                    "port": switch_ports[branch],
                    "source_port": source_port,
                    "compare_port": compare_port,
                    "schedule": schedule.to_dict(),
                    "deadline_s": deadline,
                },
            ),
            daemon=True,
        )
        for branch in range(k)
    ]
    compare_proc.start()
    for proc in switch_procs:
        proc.start()
    try:
        source_stats = asyncio.run(
            _source_async(
                source_port,
                compare_port,
                switch_ports,
                packets,
                interval,
                payload_size,
                ready_timeout,
            )
        )
        outcome = result_q.get(timeout=deadline)
    finally:
        for proc in [compare_proc, *switch_procs]:
            proc.terminate()
            proc.join(timeout=5.0)
    if not outcome.get("ok"):
        raise RuntimeError(
            f"live compare process failed: {outcome.get('error')}\n"
            f"{outcome.get('traceback', '')}"
        )
    live = Verdict(**outcome["verdict"])
    live.extras["source"] = source_stats

    report: Dict[str, Any] = {
        "schedule": schedule.to_dict(),
        "packets": packets,
        "interval": interval,
        "live": live.to_dict(),
    }
    if skip_des:
        report["des"] = None
        report["diffs"] = None
        report["match"] = None
        return report
    des = des_twin_run(
        schedule,
        packets=packets,
        interval=interval,
        payload_size=payload_size,
        seed=seed,
        miss_threshold=miss_threshold,
        probation_clean_target=probation_clean_target,
        buffer_timeout=des_buffer_timeout,
    )
    diffs = verdicts_match(live, des)
    report["des"] = des.to_dict()
    report["diffs"] = diffs
    report["match"] = not diffs
    return report
