"""``python -m repro live ...`` — the real-socket demo commands."""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.live.demo import run_live_demo
from repro.live.schedule import LiveFault, LiveSchedule, default_schedule


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro live",
        description="run the NetCo combiner over localhost UDP sockets",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    demo = sub.add_parser(
        "demo",
        help="3 switch processes + 1 compare process under a fault "
        "schedule, diffed against the DES twin",
    )
    demo.add_argument("--packets", type=int, default=300)
    demo.add_argument("--interval", type=float, default=0.01,
                      help="CBR inter-departure time in seconds")
    demo.add_argument("--payload-size", type=int, default=256)
    demo.add_argument("--crash-branch", type=int, default=1)
    demo.add_argument("--crash-index", type=int, default=None,
                      help="packet index of the crash (default: packets/3)")
    demo.add_argument("--restart-index", type=int, default=None,
                      help="packet index of the restart (default: none)")
    demo.add_argument("--miss-threshold", type=int, default=8)
    demo.add_argument("--probation-clean-target", type=int, default=12)
    demo.add_argument("--live-buffer-timeout", type=float, default=0.15)
    demo.add_argument("--des-buffer-timeout", type=float, default=2e-3)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--skip-des", action="store_true",
                      help="run only the live half (no verdict diff)")
    demo.add_argument("--json", dest="json_path", default=None,
                      help="write the full report to this file")
    return parser


def _print_verdict(label: str, verdict: dict) -> None:
    print(f"  {label}: sent={verdict['sent']} released={verdict['released']} "
          f"fingerprint={verdict['fingerprint']}")
    print(f"    alarms={verdict['alarms']}")
    print(f"    transitions={verdict['transitions']} "
          f"quarantined={verdict['quarantined']}")


def live_main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    crash_index = args.crash_index
    if crash_index is None:
        schedule = default_schedule(args.packets, branch=args.crash_branch,
                                    restart=args.restart_index is not None)
        if args.restart_index is not None:
            schedule = LiveSchedule(
                name="crash_restart",
                faults=(
                    LiveFault(args.crash_branch, args.packets // 3,
                              args.restart_index),
                ),
            )
    else:
        schedule = LiveSchedule(
            name="crash_restart" if args.restart_index is not None else "crash",
            faults=(
                LiveFault(args.crash_branch, crash_index, args.restart_index),
            ),
        )
    report = run_live_demo(
        packets=args.packets,
        interval=args.interval,
        payload_size=args.payload_size,
        schedule=schedule,
        miss_threshold=args.miss_threshold,
        probation_clean_target=args.probation_clean_target,
        live_buffer_timeout=args.live_buffer_timeout,
        des_buffer_timeout=args.des_buffer_timeout,
        seed=args.seed,
        skip_des=args.skip_des,
    )
    print(f"live demo: {report['packets']} packets, "
          f"schedule {report['schedule']['name']} {report['schedule']['faults']}")
    _print_verdict("udp", report["live"])
    if report["des"] is not None:
        _print_verdict("des", report["des"])
        if report["match"]:
            print("verdicts MATCH")
        else:
            print("verdicts DIFFER:")
            for diff in report["diffs"]:
                print(f"  - {diff}")
    if args.json_path:
        with open(args.json_path, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"report written to {args.json_path}")
    if report["des"] is None:
        return 0
    return 0 if report["match"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(live_main())
