"""Backend-comparable run verdicts.

A verdict is everything about a combiner run that should *not* depend on
which transport moved the bytes: how many datagrams were offered, which
sequence numbers the compare released (as a fingerprint), which alarm
kinds fired against which branches, and the ordered quarantine /
re-admission transitions.  Timings, latencies and per-session counters
are backend-specific and live in :attr:`Verdict.extras`, which
:func:`verdicts_match` ignores.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List


def fingerprint(sequences: Iterable[int]) -> str:
    """Order-independent digest of the released sequence numbers."""
    text = ",".join(str(s) for s in sorted(sequences))
    return hashlib.sha256(text.encode("ascii")).hexdigest()[:16]


@dataclass
class Verdict:
    """One backend's account of one run (see module docstring)."""

    backend: str
    sent: int
    released: int
    fingerprint: str
    #: sorted, de-duplicated [kind, branch] pairs
    alarms: List[List[Any]] = field(default_factory=list)
    #: ordered [event, branch] pairs ("quarantine" / "readmit")
    transitions: List[List[Any]] = field(default_factory=list)
    quarantined: List[int] = field(default_factory=list)
    #: backend-specific detail, never compared
    extras: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "sent": self.sent,
            "released": self.released,
            "fingerprint": self.fingerprint,
            "alarms": self.alarms,
            "transitions": self.transitions,
            "quarantined": self.quarantined,
            "extras": self.extras,
        }

    @classmethod
    def build(
        cls,
        backend: str,
        sent: int,
        released_sequences: Iterable[int],
        alarm_pairs: Iterable[tuple],
        transitions: Iterable[tuple],
        **extras: Any,
    ) -> "Verdict":
        released = sorted(set(released_sequences))
        alarms = sorted({(kind, branch) for kind, branch in alarm_pairs})
        ordered = [[event, branch] for event, branch in transitions]
        return cls(
            backend=backend,
            sent=sent,
            released=len(released),
            fingerprint=fingerprint(released),
            alarms=[[kind, branch] for kind, branch in alarms],
            transitions=ordered,
            quarantined=sorted(
                {branch for event, branch in ordered if event == "quarantine"}
            ),
            extras=dict(extras),
        )


def verdicts_match(a: Verdict, b: Verdict) -> List[str]:
    """Differences between two backends' verdicts ([] = they agree)."""
    diffs: List[str] = []
    for name in ("sent", "released", "fingerprint", "alarms", "transitions",
                 "quarantined"):
        va, vb = getattr(a, name), getattr(b, name)
        if va != vb:
            diffs.append(f"{name}: {a.backend}={va!r} vs {b.backend}={vb!r}")
    return diffs
