"""The live demo's worker processes (spawn-safe module-level entrypoints).

Topology (all localhost UDP, one socket per process via
:class:`~repro.transport.udp.UdpTransport`)::

    source ──fanout──▶ switch 0 ──collect──▶
    source ──fanout──▶ switch 1 ──collect──▶  compare (votes, releases)
    source ──fanout──▶ switch 2 ──collect──▶

Each switch process is one untrusted branch: it forwards every fanout
datagram to the compare tagged with its branch id, except the sequence
windows its fault schedule says to drop (a crashed router forwards
nothing).  The compare process runs the stock :class:`CompareCore` and
:class:`QuarantineController` on a :class:`RealTimeScheduler` — the same
objects, methods and thresholds the DES backend uses.

Startup is barriered with transport HELLOs: workers greet the source
until traffic arrives, and the source holds its first datagram until
every worker has greeted — otherwise a slow-to-bind switch would look
like a silently failed branch from packet zero.
"""

from __future__ import annotations

import asyncio
import traceback
from typing import Any, Dict, List, Optional

from repro.chaos.quarantine import QuarantineController
from repro.core.alarms import AlarmSink
from repro.core.compare import CompareConfig, CompareContext, CompareCore
from repro.live.schedule import LiveSchedule
from repro.live.verdict import Verdict
from repro.sim import TraceBus
from repro.traffic.udp import _decode_payload
from repro.transport import ROLE_COLLECT, ROLE_FANOUT, SessionSpec
from repro.transport.realtime import RealTimeScheduler
from repro.transport.udp import UdpTransport
from repro.transport.wire import MSG_BYE, MSG_HELLO

HOST = "127.0.0.1"
HELLO_PERIOD = 0.2


# ----------------------------------------------------------------------
# switch process: one untrusted branch
# ----------------------------------------------------------------------
async def _switch_async(config: Dict[str, Any]) -> None:
    branch = int(config["branch"])
    scope = config["scope"]
    schedule = LiveSchedule.from_dict(config["schedule"])
    transport = UdpTransport((HOST, int(config["port"])), name=f"live.r{branch}")
    await transport.start()
    collect = transport.session(
        SessionSpec(scope, ROLE_COLLECT, branch),
        remote=(HOST, int(config["compare_port"])),
    )
    saw_data = asyncio.Event()
    dropped = [0]

    def on_fanout(packet: object, meta: dict) -> None:
        saw_data.set()
        seq = meta.get("seq")
        if seq is not None and schedule.drops(branch, seq):
            dropped[0] += 1
            return
        collect.send(packet, branch=branch)

    fanout = transport.session(SessionSpec(scope, ROLE_FANOUT, branch))
    fanout.set_receiver(on_fanout)

    source = (HOST, int(config["source_port"]))
    deadline = asyncio.get_running_loop().time() + float(config["deadline_s"])
    while not saw_data.is_set():
        transport.send_control(MSG_HELLO, scope, branch=branch, remote=source)
        try:
            await asyncio.wait_for(saw_data.wait(), timeout=HELLO_PERIOD)
        except asyncio.TimeoutError:
            pass
        if asyncio.get_running_loop().time() > deadline:
            transport.close()
            return
    # Forward until the orchestrator tears us down (or the deadline, as
    # a backstop against a leaked process).
    remaining = deadline - asyncio.get_running_loop().time()
    if remaining > 0:
        await asyncio.sleep(remaining)
    transport.close()


def switch_main(config: Dict[str, Any]) -> None:
    asyncio.run(_switch_async(config))


# ----------------------------------------------------------------------
# compare process: the trusted voter
# ----------------------------------------------------------------------
async def _compare_async(config: Dict[str, Any]) -> dict:
    scope = config["scope"]
    loop = asyncio.get_running_loop()
    scheduler = RealTimeScheduler(loop)
    trace_bus = TraceBus(retain=False)
    alarms = AlarmSink(trace_bus)
    core = CompareCore(
        scheduler,
        CompareConfig(
            k=int(config["k"]),
            buffer_timeout=float(config["buffer_timeout"]),
            miss_threshold=int(config["miss_threshold"]),
            probation_clean_target=int(config["probation_clean_target"]),
        ),
        name="live_compare",
        alarm_sink=alarms,
        trace_bus=trace_bus,
    )
    controller = QuarantineController(core, trace_bus)

    released: List[int] = []

    def release(packet: object) -> None:
        decoded = _decode_payload(packet.payload)
        if decoded is not None:
            released.append(decoded[0])

    context = CompareContext(scope=scope, release=release, block_branch=None)

    transport = UdpTransport((HOST, int(config["port"])), name="live.compare")
    await transport.start()
    saw_data = asyncio.Event()
    done = asyncio.Event()
    submissions = [0]

    def on_collect(packet: object, meta: dict) -> None:
        branch = meta.get("branch")
        if branch is None:
            return
        saw_data.set()
        submissions[0] += 1
        core.submit(packet, branch, context, claim=meta.get("claim"))

    collect = transport.session(SessionSpec(scope, ROLE_COLLECT))
    collect.set_receiver(on_collect)

    def on_control(
        mtype: int, _scope: str, _branch: Optional[int], _addr: tuple
    ) -> None:
        if mtype == MSG_BYE:
            done.set()

    transport.set_control_handler(on_control)

    source = (HOST, int(config["source_port"]))

    async def hello_loop() -> None:
        while not (saw_data.is_set() or done.is_set()):
            transport.send_control(MSG_HELLO, "compare", remote=source)
            await asyncio.sleep(HELLO_PERIOD)

    greeter = asyncio.ensure_future(hello_loop())
    try:
        await asyncio.wait_for(done.wait(), timeout=float(config["deadline_s"]))
        timed_out = False
    except asyncio.TimeoutError:
        timed_out = True
    greeter.cancel()
    # Let in-flight entries expire through the sweeper so miss counts
    # and quarantine decisions settle exactly as they do mid-run.
    await asyncio.sleep(max(3.0 * core.config.buffer_timeout, 0.3))
    core.flush()
    controller.detach()
    verdict = Verdict.build(
        backend="udp",
        sent=int(config["packets"]),
        released_sequences=released,
        alarm_pairs=((alarm.kind, alarm.branch) for alarm in alarms.alarms),
        transitions=((t["event"], t["branch"]) for t in controller.transitions),
        submissions=submissions[0],
        timed_out=timed_out,
        rx_errors=transport.rx_errors,
        rx_unmatched=transport.rx_unmatched,
        compare=core.stats.as_dict(),
        transport_stats=transport.stats(),
    )
    transport.close()
    return verdict.to_dict()


def compare_main(config: Dict[str, Any], result_q) -> None:
    try:
        result_q.put({"ok": True, "verdict": asyncio.run(_compare_async(config))})
    except Exception as exc:  # surface the real error to the orchestrator
        result_q.put(
            {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            }
        )
