"""The DES twin of a live run: same fault schedule, simulated transport.

Runs the calibrated Central-k testbed (DES backend, :class:`DesTransport`
sessions end to end) under the packet-index schedule a live demo used.
Index-to-time conversion places each fault *between* two departures: the
source emits sequence ``s`` at ``warmup + s * interval``, so failing a
router at ``warmup + (at_index - 0.5) * interval`` guarantees packets
``< at_index`` cleared it and packets ``>= at_index`` find it dead —
exactly the set a live switch process drops.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, Optional

from repro.chaos.quarantine import QuarantineController
from repro.live.schedule import LiveSchedule
from repro.live.verdict import Verdict
from repro.scenarios.testbed import build_testbed
from repro.traffic.udp import UdpReceiver, UdpSender


def des_twin_run(
    schedule: LiveSchedule,
    packets: int,
    interval: float,
    payload_size: int = 256,
    seed: int = 0,
    variant: str = "central3",
    miss_threshold: int = 8,
    probation_clean_target: int = 12,
    buffer_timeout: float = 2e-3,
    params: Optional[Dict[str, Any]] = None,
) -> Verdict:
    """Run ``schedule`` through the simulator; return the DES verdict."""
    schedule.validate()
    from repro.analysis.tasks import params_from_dict

    base = replace(
        params_from_dict(params), compare_buffer_timeout=buffer_timeout
    )
    testbed = build_testbed(variant, base, seed)
    net = testbed.network
    core = testbed.compare_core
    core.config.miss_threshold = miss_threshold
    core.config.probation_clean_target = probation_clean_target
    controller = QuarantineController(core, net.trace)

    warmup = 1e-3
    for fault in schedule.faults:
        router = testbed.chain.routers[fault.branch]
        net.sim.schedule_at(
            warmup + (fault.at_index - 0.5) * interval,
            lambda r=router: r.fail(wipe_flows=True),
        )
        if fault.restart_index is not None:
            net.sim.schedule_at(
                warmup + (fault.restart_index - 0.5) * interval,
                lambda r=router: r.recover(restore_flows=True),
            )

    # duration = (packets - 0.5) * interval makes the sender emit exactly
    # `packets` datagrams (seq n departs at n * interval < duration).
    duration = (packets - 0.5) * interval
    dport = 5001
    receiver = UdpReceiver(testbed.h2, dport)
    sender = UdpSender(
        testbed.h1,
        dst_mac=testbed.h2.mac,
        dst_ip=testbed.h2.ip,
        dport=dport,
        rate_bps=payload_size * 8.0 / interval,
        payload_size=payload_size,
        send_cost=min(base.udp_send_cost, interval),
    )
    sender.start(duration, delay=warmup)
    drain = max(10 * buffer_timeout, 0.05)
    net.run(until=warmup + duration + drain)
    receiver.close()
    controller.detach()
    if sender.sent != packets:
        raise RuntimeError(
            f"DES twin paced {sender.sent} packets, expected {packets}"
        )

    return Verdict.build(
        backend="des",
        sent=sender.sent,
        released_sequences=receiver.received_sequences(),
        alarm_pairs=(
            (alarm.kind, alarm.branch) for alarm in testbed.chain.alarms.alarms
        ),
        transitions=(
            (t["event"], t["branch"]) for t in controller.transitions
        ),
        schedule=schedule.to_dict(),
        duplicates=receiver.duplicates,
        compare=core.stats.as_dict(),
        transport_stats=testbed.transport.stats(),
    )
