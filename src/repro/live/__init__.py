"""Real-time (wall-clock, multi-process) runs of the NetCo combiner.

The DES backend answers "what does the paper's testbed do"; this package
answers "does the same voting code hold up over real sockets".  Three
switch processes and one compare process talk localhost UDP through
:mod:`repro.transport.udp`; the compare process runs the *same*
:class:`~repro.core.compare.CompareCore` and
:class:`~repro.chaos.quarantine.QuarantineController` the simulator
runs, scheduled by :class:`~repro.transport.realtime.RealTimeScheduler`.

Fault schedules live in *packet-index* space (drop sequence numbers in
``[at_index, restart_index)``) so a live run and its DES twin inject the
same fault at the same point of the packet stream, making the two
backends' verdicts — alarms, quarantine transitions, released-sequence
fingerprint — directly comparable (see DESIGN.md §14).
"""

from repro.live.schedule import LiveFault, LiveSchedule, default_schedule
from repro.live.verdict import Verdict, fingerprint, verdicts_match

__all__ = [
    "LiveFault",
    "LiveSchedule",
    "Verdict",
    "default_schedule",
    "fingerprint",
    "verdicts_match",
]
