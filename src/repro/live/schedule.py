"""Packet-index fault schedules shared by the live demo and its DES twin.

Wall-clock and simulated time cannot be aligned exactly, but the packet
stream can: the source paces sequence numbers deterministically, so
"crash branch 1 at packet 100" means the same thing to a switch process
(stop forwarding sequences >= 100) and to the simulator (fail the router
between the departures of packets 99 and 100).  Everything the verdict
counts — quorums, misses, probation credits — is in packets, so the two
injections produce the same verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class LiveFault:
    """Crash one branch for a packet-index window.

    The branch forwards nothing for sequences in ``[at_index,
    restart_index)``; ``restart_index=None`` means it never comes back.
    """

    branch: int
    at_index: int
    restart_index: Optional[int] = None

    def validate(self) -> None:
        if self.branch < 0:
            raise ValueError(f"branch must be >= 0, got {self.branch}")
        if self.at_index < 0:
            raise ValueError(f"at_index must be >= 0, got {self.at_index}")
        if self.restart_index is not None and self.restart_index <= self.at_index:
            raise ValueError(
                f"restart_index {self.restart_index} <= at_index {self.at_index}"
            )

    def drops(self, seq: int) -> bool:
        if seq < self.at_index:
            return False
        return self.restart_index is None or seq < self.restart_index

    def to_dict(self) -> dict:
        record = {"branch": self.branch, "at_index": self.at_index}
        if self.restart_index is not None:
            record["restart_index"] = self.restart_index
        return record


@dataclass(frozen=True)
class LiveSchedule:
    """A named set of :class:`LiveFault` windows."""

    name: str
    faults: tuple

    def validate(self) -> None:
        for fault in self.faults:
            fault.validate()

    def drops(self, branch: int, seq: int) -> bool:
        return any(f.branch == branch and f.drops(seq) for f in self.faults)

    def to_dict(self) -> dict:
        return {"name": self.name, "faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, data: dict) -> "LiveSchedule":
        faults = tuple(
            LiveFault(
                branch=int(record["branch"]),
                at_index=int(record["at_index"]),
                restart_index=(
                    int(record["restart_index"])
                    if record.get("restart_index") is not None
                    else None
                ),
            )
            for record in data.get("faults", [])
        )
        schedule = cls(name=data.get("name", "live"), faults=faults)
        schedule.validate()
        return schedule


def default_schedule(
    packets: int, branch: int = 1, restart: bool = False
) -> LiveSchedule:
    """The demo's stock fault: crash ``branch`` a third of the way in.

    Without restart the verdict is unambiguous across backends (one
    quarantine, no readmission); with restart the branch returns at two
    thirds and must earn re-admission through probation.
    """
    at = packets // 3
    restart_index = (2 * packets) // 3 if restart else None
    return LiveSchedule(
        name="crash_restart" if restart else "crash",
        faults=(LiveFault(branch=branch, at_index=at, restart_index=restart_index),),
    )
