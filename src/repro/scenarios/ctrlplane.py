"""Figure 3 testbed with a replicated, reactive control plane.

The base testbed provisions the untrusted routers' MAC routes statically
(the paper's administrator).  This scenario instead leaves the flow
tables empty and attaches a :class:`~repro.ctrl.replicated.
ReplicatedControlPlane` running k copies of the L2 learning switch:
routes are installed reactively through PacketIn → vote → FlowMod, so a
compromised controller replica is exercised on the real control path of
every existing topology variant.

Flow entries carry a hard timeout, so installed routes keep expiring and
being re-voted — that steady trickle of control decisions is what gives
a quarantined replica probation currency (and a lying one, rope).

The routers have exactly two data ports (ingress bundle side, egress
bundle side), so the learning switch's flood on an unknown destination
*is* the correct route — reactive control never changes which wire a
packet leaves on, only whether a flow entry short-circuits the next
decision.  That is what keeps the data-plane records of a voted run
bit-identical to an unreplicated run on the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.apps.learning import LearningSwitchApp
from repro.chaos.quarantine import QuarantineController
from repro.core.alarms import ALARM_MINORITY_DIVERGENCE, ALARM_ROUTER_UNAVAILABLE
from repro.ctrl.compare import ControlCompareConfig
from repro.ctrl.replicated import ReplicatedControlPlane
from repro.scenarios.testbed import Testbed, TestbedParams, build_testbed

__all__ = ["CtrlParams", "CtrlTestbed", "build_ctrl_testbed"]


@dataclass
class CtrlParams:
    """Control-plane knobs, orthogonal to :class:`TestbedParams`."""

    #: number of controller replicas (1 = unreplicated pass-through)
    ctrl_k: int = 3
    #: per-direction switch <-> control-plane channel latency
    ctrl_latency: float = 20e-6
    #: replica per-message processing cost (0 = instantaneous, which
    #: keeps fan-out and voting synchronous at one sim time — required
    #: for bit-identity with the unreplicated run)
    ctrl_proc_time: float = 0.0
    vote_timeout: float = 2e-3
    miss_threshold: int = 4
    divergence_threshold: int = 1
    probation_clean_target: int = 6
    #: reactive flows expire and are re-voted at this cadence
    flow_hard_timeout: float = 5e-3
    flow_idle_timeout: float = 0.0

    def compare_config(self) -> ControlCompareConfig:
        return ControlCompareConfig(
            k=self.ctrl_k,
            vote_timeout=self.vote_timeout,
            miss_threshold=self.miss_threshold,
            divergence_threshold=self.divergence_threshold,
            probation_clean_target=self.probation_clean_target,
        )


@dataclass
class CtrlTestbed:
    """A built control-plane scenario."""

    testbed: Testbed
    ctrl: CtrlParams
    control_plane: ReplicatedControlPlane
    quarantine: Optional[QuarantineController]

    @property
    def network(self):
        return self.testbed.network

    @property
    def compare(self):
        return self.control_plane.compare

    @property
    def h1(self):
        return self.testbed.h1

    @property
    def h2(self):
        return self.testbed.h2


def build_ctrl_testbed(
    variant: str,
    ctrl: Optional[CtrlParams] = None,
    params: Optional[TestbedParams] = None,
    seed: Optional[int] = None,
) -> CtrlTestbed:
    """Build any Section V variant under reactive replicated control."""
    ctrl = ctrl or CtrlParams()
    testbed = build_testbed(variant, params=params, seed=seed, install_routes=False)
    net = testbed.network

    control_plane = ReplicatedControlPlane(
        net.sim,
        lambda index, name: LearningSwitchApp(
            net.sim,
            name=name,
            trace_bus=net.trace,
            flow_idle_timeout=ctrl.flow_idle_timeout,
            flow_hard_timeout=ctrl.flow_hard_timeout,
        ),
        k=ctrl.ctrl_k,
        name="nc_ctrl",
        trace_bus=net.trace,
        compare_config=ctrl.compare_config(),
        alarm_sink=testbed.chain.alarms,
        proc_time=ctrl.ctrl_proc_time,
    )
    for router in testbed.chain.routers:
        router.connect_controller(control_plane, latency=ctrl.ctrl_latency)

    quarantine: Optional[QuarantineController] = None
    if ctrl.ctrl_k >= 2:
        # Self-healing loop: silent replicas (crash signature) and
        # divergent replicas (lying signature) both land in probation.
        quarantine = QuarantineController(
            control_plane.compare,
            net.trace,
            trigger_kinds=(ALARM_ROUTER_UNAVAILABLE, ALARM_MINORITY_DIVERGENCE),
        )
    return CtrlTestbed(
        testbed=testbed,
        ctrl=ctrl,
        control_plane=control_plane,
        quarantine=quarantine,
    )
