"""The Figure 3 performance-testing topology, in all six variants.

Section V-A defines the scenarios; all are derived from the same chain
``h1 — s1 — {r_i} — s2 — h2`` (plus ``h3``, the compare host):

* **Linespeed** — h1, s1, r3, s2, h2 only: the insecure benchmark.
* **Central3 / Central5** — the full combiner with k=3 / k=5 and the
  C-style compare attached in-band on a dedicated host.
* **POX3** — k=3, compare as a POX controller application.
* **Dup3 / Dup5** — hubs only; packets are split but never combined.

Calibration: the simulator's free parameters (per-packet costs, link
characteristics) are set so that the *shape* of the paper's Table I /
Figures 4-8 is reproduced; see DESIGN.md §5.  The defaults below model a
software-switch testbed: a ~12 µs per-packet router datapath (≈ 480
Mbit/s of MTU frames through one router), an 8 µs trusted-endpoint cost,
a 15 µs compare (memcmp + socket handling), a 42 µs per-datagram UDP
sender cost (iperf's syscall path), and a receive path costing
~2 µs + 9.5 ns/byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.combiner import (
    CombinerChain,
    CombinerChainParams,
    build_combiner_chain,
)
from repro.core.compare import CompareConfig
from repro.net.host import Host
from repro.net.topology import Network
from repro.scenarios.registry import (
    ScenarioSpec,
    get_scenario,
    scenario_names,
)
from repro.traffic.iperf import PathEndpoints

#: all registered variant names — derived from the scenario registry
#: (:mod:`repro.scenarios.registry`), never maintained by hand here.
VARIANTS = scenario_names()


@dataclass
class TestbedParams:
    """Calibrated parameters of the Figure 3 testbed (see module doc)."""

    __test__ = False  # not a pytest class, despite the name

    link_rate_bps: float = 1e9
    link_delay: float = 3e-6
    queue_capacity: int = 60
    switch_service_queue: int = 150
    host_stack_delay: float = 30e-6
    host_stack_jitter: float = 3e-6
    host_recv_cost_base: float = 2e-6
    host_recv_cost_per_byte: float = 8e-9
    router_proc_time: float = 5e-6
    router_proc_per_byte: float = 2.5e-9
    endpoint_proc_time: float = 1e-6
    endpoint_proc_per_byte: float = 2e-9
    shared_cpu: bool = True
    compare_proc_time: float = 4e-6
    compare_proc_per_byte: float = 13.5e-9
    compare_link_rate_bps: float = 1e9
    compare_link_delay: float = 15e-6
    compare_buffer_timeout: float = 5e-3
    compare_cache_capacity: int = 4096
    compare_cleanup_duration: float = 2e-4
    compare_cleanup_scan_cost: float = 1e-7
    pox_channel_latency: float = 100e-6
    pox_proc_time: float = 120e-6
    #: per-datagram sender CPU cost for UDP tests (iperf -u syscall path)
    udp_send_cost: float = 42e-6
    #: packet-train size for the batching tier (1 = event per packet)
    batch_train: int = 1
    seed: int = 0

    def compare_config(self, k: int) -> CompareConfig:
        return CompareConfig(
            k=k,
            proc_time=self.compare_proc_time,
            proc_per_byte=self.compare_proc_per_byte,
            buffer_timeout=self.compare_buffer_timeout,
            cache_capacity=self.compare_cache_capacity,
            cleanup_duration=self.compare_cleanup_duration,
            cleanup_scan_cost=self.compare_cleanup_scan_cost,
        )


class Testbed:
    """A built Figure 3 scenario: network, hosts, combiner chain."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(
        self,
        variant: str,
        network: Network,
        h1: Host,
        h2: Host,
        chain: CombinerChain,
        params: TestbedParams,
    ) -> None:
        self.variant = variant
        self.network = network
        self.h1 = h1
        self.h2 = h2
        self.chain = chain
        self.params = params

    def path(self, reverse: bool = False) -> PathEndpoints:
        """Measurement endpoints (h1 as client unless reversed)."""
        if reverse:
            return PathEndpoints(self.network, self.h2, self.h1)
        return PathEndpoints(self.network, self.h1, self.h2)

    @property
    def compare_core(self):
        return self.chain.compare_core

    @property
    def routers(self):
        return self.chain.routers

    @property
    def transport(self):
        """The chain's compare-plane transport (DES backend)."""
        return self.chain.transport

    def add_transport_tracer(self, fn):
        """Observe every transport message anywhere in the chain."""
        self.chain.add_tracer(fn)


def build_testbed(
    variant: str,
    params: Optional[TestbedParams] = None,
    seed: Optional[int] = None,
    install_routes: bool = True,
) -> Testbed:
    """Build one Section V scenario from scratch.

    ``install_routes=False`` leaves the untrusted routers' flow tables
    empty — for scenarios where a control plane installs routes
    reactively (:mod:`repro.scenarios.ctrlplane`) instead of the static
    provisioning below.
    """
    spec: ScenarioSpec = get_scenario(variant)
    params = params or TestbedParams()
    if seed is not None:
        params = replace(params, seed=seed)
    k, mode, transport = spec.k, spec.mode, spec.transport

    net = Network(seed=params.seed, batch_train=params.batch_train)
    chain_params = CombinerChainParams(
        k=k,
        mode=mode,
        link_rate_bps=params.link_rate_bps,
        link_delay=params.link_delay,
        queue_capacity=params.queue_capacity,
        router_proc_time=params.router_proc_time,
        router_proc_per_byte=params.router_proc_per_byte,
        endpoint_proc_time=params.endpoint_proc_time,
        endpoint_proc_per_byte=params.endpoint_proc_per_byte,
        shared_cpu=params.shared_cpu,
        switch_service_queue=params.switch_service_queue,
        compare_link_rate_bps=params.compare_link_rate_bps,
        compare_link_delay=params.compare_link_delay,
        compare=params.compare_config(k),
        transport=transport,
        controller_latency=params.pox_channel_latency,
        controller_proc_time=params.pox_proc_time,
    )
    chain = build_combiner_chain(net, "nc", chain_params)

    h1 = net.add_host(
        "h1",
        stack_delay=params.host_stack_delay,
        stack_jitter=params.host_stack_jitter,
        recv_cost_base=params.host_recv_cost_base,
        recv_cost_per_byte=params.host_recv_cost_per_byte,
    )
    h2 = net.add_host(
        "h2",
        stack_delay=params.host_stack_delay,
        stack_jitter=params.host_stack_jitter,
        recv_cost_base=params.host_recv_cost_base,
        recv_cost_per_byte=params.host_recv_cost_per_byte,
    )
    net.connect(
        h1,
        chain.endpoint_a,
        rate_bps=params.link_rate_bps,
        delay=params.link_delay,
        queue_capacity=params.queue_capacity,
    )
    net.connect(
        h2,
        chain.endpoint_b,
        rate_bps=params.link_rate_bps,
        delay=params.link_delay,
        queue_capacity=params.queue_capacity,
    )
    if install_routes:
        # MAC-destination routing on the untrusted routers (the paper's
        # only matched header field).
        chain.install_mac_route(h2.mac, toward="b")
        chain.install_mac_route(h1.mac, toward="a")
    return Testbed(variant, net, h1, h2, chain, params)
