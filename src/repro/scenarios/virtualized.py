"""The Section VII scenario: a *virtualized* NetCo over diverse paths.

Figure 9's setting: a transport network with several vendor-diverse
paths between two edge switches.  Instead of buying redundant hardware,
the ingress edge splits each protected flow into ``k`` tunnelled copies
over node-disjoint paths, and the egress edge recombines them with an
in-band compare.

The scenario builds a ``k``-path "ladder" network (one transit switch per
rung, alternating vendors), protects the ``src -> dst`` flow, and lets an
attack be mounted on any transit switch.  With ``k = 2`` misbehaviour is
*detected* (the vote never completes and an alarm is raised); with
``k = 3`` it is *prevented* (the majority still releases every packet).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.compare import CompareConfig
from repro.core.virtual import (
    VirtualCombiner,
    VirtualEgress,
    VirtualIngress,
    provision_virtual_combiner,
)
from repro.net.host import Host
from repro.net.topology import Network
from repro.openflow.actions import Output
from repro.openflow.match import Match
from repro.openflow.switch import OpenFlowSwitch


@dataclass
class VirtualizedScenario:
    """A built Figure 9 ladder with a provisioned virtual combiner."""

    network: Network
    src: Host
    dst: Host
    ingress: VirtualIngress
    egress: VirtualEgress
    transits: List[OpenFlowSwitch] = field(default_factory=list)
    combiner: Optional[VirtualCombiner] = None

    def transit(self, index: int) -> OpenFlowSwitch:
        return self.transits[index]

    @property
    def compare_core(self):
        assert self.combiner is not None
        return self.combiner.core


def build_virtualized_scenario(
    k: int = 3,
    paths_available: Optional[int] = None,
    seed: int = 0,
    protect: bool = True,
    buffer_timeout: float = 2e-3,
    switch_proc_time: float = 5e-6,
) -> VirtualizedScenario:
    """Build the ladder and (optionally) provision the virtual combiner.

    ``paths_available`` transit paths are wired (default ``k``); the
    combiner uses the first ``k``.  Each transit switch stands in for a
    different vendor, so a single compromised transit models the paper's
    non-cooperation assumption.
    """
    paths_available = paths_available if paths_available is not None else k
    if paths_available < k:
        raise ValueError(f"need at least {k} paths, got {paths_available}")
    net = Network(seed=seed)
    link = dict(rate_bps=1e9, delay=2e-6)

    ingress = VirtualIngress(net.sim, "ingress", trace_bus=net.trace,
                             proc_time=switch_proc_time)
    egress = VirtualEgress(net.sim, "egress", trace_bus=net.trace,
                           proc_time=switch_proc_time)
    net.add_node(ingress)
    net.add_node(egress)

    src = net.add_host("src", stack_delay=10e-6)
    dst = net.add_host("dst", stack_delay=10e-6)
    net.connect(src, ingress, **link)
    net.connect(egress, dst, **link)

    transits: List[OpenFlowSwitch] = []
    for i in range(paths_available):
        transit = OpenFlowSwitch(
            net.sim, f"vendor{i}", trace_bus=net.trace, proc_time=switch_proc_time
        )
        net.add_node(transit)
        transits.append(transit)
        net.connect(ingress, transit, **link)
        net.connect(transit, egress, **link)

    # The egress forwards released (and unprotected) dst-bound packets on.
    egress.install(
        Match(dl_dst=dst.mac),
        [Output(net.port_no_between("egress", "dst"))],
        priority=10,
    )
    # Reverse direction (dst -> src) is left unprotected: it rides the
    # first transit, as ordinary traffic would.
    egress.install(
        Match(dl_dst=src.mac),
        [Output(net.port_no_between("egress", transits[0].name))],
        priority=10,
    )
    transits[0].install(
        Match(dl_dst=src.mac),
        [Output(net.port_no_between(transits[0].name, "ingress"))],
        priority=10,
    )
    ingress.install(
        Match(dl_dst=src.mac),
        [Output(net.port_no_between("ingress", "src"))],
        priority=10,
    )

    scenario = VirtualizedScenario(
        network=net,
        src=src,
        dst=dst,
        ingress=ingress,
        egress=egress,
        transits=transits,
    )
    if protect:
        scenario.combiner = provision_virtual_combiner(
            net,
            ingress,
            egress,
            dst_mac=dst.mac,
            k=k,
            compare=CompareConfig(k=k, proc_time=5e-6, buffer_timeout=buffer_timeout),
        )
    return scenario
