"""The scenario registry: one typed record per evaluation scenario.

Every Section V testbed variant is registered here once, as a
:class:`ScenarioSpec` carrying the builder parameters (replication
factor, endpoint mode, compare transport) *and* the presentation
metadata the rest of the stack needs (paper-figure ordering, Table I
membership).  Everything that used to be a hand-maintained list —
``testbed.VARIANTS``, ``runners.ALL_SCENARIOS``/``TABLE1_SCENARIOS``,
CLI ``choices`` and validation messages, experiment-plan validation —
derives from this registry, so registering a new scenario propagates it
everywhere at once and nothing can desynchronise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.endpoint import MODE_COMBINE, MODE_DUP

__all__ = [
    "ScenarioSpec",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "figure_scenarios",
    "table1_scenarios",
    "unknown_scenario_error",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """Typed builder parameters + metadata for one testbed variant."""

    name: str
    k: int                 # replication factor (number of parallel routers)
    mode: str              # MODE_COMBINE (full NetCo) or MODE_DUP (split only)
    transport: str         # compare transport: "inline" or "controller"
    title: str = ""        # human-readable label
    figure_order: int = 0  # column order in the paper's figures/Table I
    in_table1: bool = True # does the paper's Table I include this scenario?

    def validate(self) -> None:
        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.k < 1:
            raise ValueError(f"{self.name}: k must be >= 1, got {self.k}")
        if self.mode not in (MODE_COMBINE, MODE_DUP):
            raise ValueError(f"{self.name}: unknown endpoint mode {self.mode!r}")
        if self.transport not in ("inline", "controller"):
            raise ValueError(
                f"{self.name}: unknown compare transport {self.transport!r}"
            )


#: name -> spec, in registration order (the order ``VARIANTS`` exposes)
_SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Validate and register one scenario (idempotent re-registration of
    an identical spec is allowed; redefinition is not)."""
    spec.validate()
    existing = _SCENARIOS.get(spec.name)
    if existing is not None and existing != spec:
        raise ValueError(f"scenario {spec.name!r} already registered differently")
    _SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    spec = _SCENARIOS.get(name)
    if spec is None:
        raise ValueError(unknown_scenario_error(name))
    return spec


def unknown_scenario_error(name: str) -> str:
    """The one error message every layer shows for a bad scenario name."""
    return (
        f"unknown testbed variant {name!r}; pick from {scenario_names()}"
    )


def scenario_names() -> Tuple[str, ...]:
    """All registered scenario names, in registration order."""
    return tuple(_SCENARIOS)


def figure_scenarios() -> Tuple[str, ...]:
    """Scenario names in the paper's figure/column order."""
    return tuple(
        s.name for s in sorted(_SCENARIOS.values(), key=lambda s: s.figure_order)
    )


def table1_scenarios() -> Tuple[str, ...]:
    """The Table I scenarios, in the paper's column order."""
    return tuple(
        s.name
        for s in sorted(_SCENARIOS.values(), key=lambda s: s.figure_order)
        if s.in_table1
    )


# ----------------------------------------------------------------------
# the Section V-A scenarios (Figure 3 testbed variants)
# ----------------------------------------------------------------------
# Registration order is the historical ``VARIANTS`` tuple;
# ``figure_order`` is the paper's column order (``ALL_SCENARIOS``).
register_scenario(ScenarioSpec(
    "linespeed", k=1, mode=MODE_DUP, transport="inline",
    title="Linespeed", figure_order=0,
))
register_scenario(ScenarioSpec(
    "central3", k=3, mode=MODE_COMBINE, transport="inline",
    title="Central3", figure_order=3,
))
register_scenario(ScenarioSpec(
    "central5", k=5, mode=MODE_COMBINE, transport="inline",
    title="Central5", figure_order=4,
))
register_scenario(ScenarioSpec(
    "pox3", k=3, mode=MODE_COMBINE, transport="controller",
    title="POX3", figure_order=5, in_table1=False,
))
register_scenario(ScenarioSpec(
    "dup3", k=3, mode=MODE_DUP, transport="inline",
    title="Dup3", figure_order=1,
))
register_scenario(ScenarioSpec(
    "dup5", k=5, mode=MODE_DUP, transport="inline",
    title="Dup5", figure_order=2,
))
