"""Coarse-granular NetCo: duplicate an entire transport network.

Section IX: "The robust combiner concept could also be implemented on a
more coarse-granular level: for instance, a security critical transport
network could be duplicated entirely, splitting and combining traffic
only at the ingress and outgress, respectively."

Here each combiner *branch* is not a single router but a whole transport
network — a chain of ``depth`` switches (one vendor per network).  The
trusted endpoints split at the ingress and vote at the egress exactly as
in the fine-grained design; a compromise anywhere inside one replica
network is outvoted by the other replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.alarms import AlarmSink
from repro.core.combiner import CompareHost
from repro.core.compare import CompareConfig, CompareCore
from repro.core.endpoint import CombinerEndpoint
from repro.net.addresses import MacAddress
from repro.net.host import Host
from repro.net.topology import Network
from repro.openflow.actions import Output
from repro.openflow.match import Match
from repro.openflow.switch import OpenFlowSwitch


@dataclass
class TransportCombiner:
    """A built coarse-granular combiner over k replica networks."""

    network: Network
    endpoint_in: CombinerEndpoint
    endpoint_out: CombinerEndpoint
    #: replica_networks[branch][hop] — the switches of each transport net
    replica_networks: List[List[OpenFlowSwitch]] = field(default_factory=list)
    compare_core: Optional[CompareCore] = None
    alarms: Optional[AlarmSink] = None

    @property
    def k(self) -> int:
        return len(self.replica_networks)

    @property
    def depth(self) -> int:
        return len(self.replica_networks[0]) if self.replica_networks else 0

    def switch(self, branch: int, hop: int) -> OpenFlowSwitch:
        return self.replica_networks[branch][hop]

    def install_mac_route(self, mac: MacAddress, toward: str) -> None:
        """Route ``mac`` through every replica network ('in' -> 'out'
        direction for 'out', reverse for 'in')."""
        if toward not in ("in", "out"):
            raise ValueError(f"toward must be 'in' or 'out', got {toward!r}")
        net = self.network
        for chain in self.replica_networks:
            hops = chain if toward == "out" else list(reversed(chain))
            terminal = self.endpoint_out if toward == "out" else self.endpoint_in
            for here, nxt in zip(hops, hops[1:] + [terminal]):
                nxt_name = nxt.name if not isinstance(nxt, str) else nxt
                here.install(
                    Match(dl_dst=MacAddress(mac)),
                    [Output(net.port_no_between(here.name, nxt_name))],
                    priority=10,
                )


def build_transport_combiner(
    network: Network,
    name: str,
    k: int = 3,
    depth: int = 3,
    link_rate_bps: float = 1e9,
    link_delay: float = 2e-6,
    switch_proc_time: float = 5e-6,
    endpoint_proc_time: float = 1e-6,
    compare: Optional[CompareConfig] = None,
) -> TransportCombiner:
    """Wire k parallel transport networks of ``depth`` switches each
    between two trusted endpoints with an in-band compare."""
    if k < 1 or depth < 1:
        raise ValueError(f"need k >= 1 and depth >= 1, got k={k}, depth={depth}")
    sim, trace = network.sim, network.trace
    alarms = AlarmSink(trace)
    link = dict(rate_bps=link_rate_bps, delay=link_delay)

    endpoint_in = CombinerEndpoint(
        sim, f"{name}_in", trace_bus=trace, proc_time=endpoint_proc_time,
        alarm_sink=alarms,
    )
    endpoint_out = CombinerEndpoint(
        sim, f"{name}_out", trace_bus=trace, proc_time=endpoint_proc_time,
        alarm_sink=alarms,
    )
    network.add_node(endpoint_in)
    network.add_node(endpoint_out)
    endpoint_out.address_registry = endpoint_in.address_registry

    replicas: List[List[OpenFlowSwitch]] = []
    for branch in range(k):
        chain: List[OpenFlowSwitch] = []
        for hop in range(depth):
            switch = OpenFlowSwitch(
                sim, f"{name}_n{branch}_s{hop}", trace_bus=trace,
                proc_time=switch_proc_time,
            )
            network.add_node(switch)
            if chain:
                network.connect(chain[-1], switch, **link)
            chain.append(switch)
        first_link = network.connect(endpoint_in, chain[0], **link)
        network.connect(chain[-1], endpoint_out, **link)
        endpoint_in.assign_branch(first_link.a.port_no, branch)
        endpoint_out.assign_branch(
            network.port_no_between(endpoint_out.name, chain[-1].name), branch
        )
        replicas.append(chain)

    config = compare or CompareConfig(k=k, buffer_timeout=2e-3)
    from dataclasses import replace as dc_replace

    config = dc_replace(config, k=k)
    core = CompareCore(
        sim, config, name=f"{name}_compare", alarm_sink=alarms, trace_bus=trace
    )
    compare_host = CompareHost(sim, f"{name}_h3", core, trace_bus=trace)
    network.add_node(compare_host)
    for endpoint in (endpoint_in, endpoint_out):
        network.connect(endpoint, compare_host, **link)
        endpoint.assign_compare_port(
            network.port_no_between(endpoint.name, compare_host.name)
        )
        compare_host.register_endpoint(
            network.port_no_between(compare_host.name, endpoint.name), endpoint
        )

    return TransportCombiner(
        network=network,
        endpoint_in=endpoint_in,
        endpoint_out=endpoint_out,
        replica_networks=replicas,
        compare_core=core,
        alarms=alarms,
    )


def build_transport_scenario(
    k: int = 3,
    depth: int = 3,
    seed: int = 0,
) -> tuple:
    """A ready-to-run scenario: src — [k replica networks] — dst."""
    net = Network(seed=seed)
    combiner = build_transport_combiner(net, "tn", k=k, depth=depth)
    src = net.add_host("src")
    dst = net.add_host("dst")
    net.connect(src, combiner.endpoint_in, rate_bps=1e9, delay=2e-6)
    net.connect(dst, combiner.endpoint_out, rate_bps=1e9, delay=2e-6)
    combiner.install_mac_route(dst.mac, toward="out")
    combiner.install_mac_route(src.mac, toward="in")
    return net, combiner, src, dst
