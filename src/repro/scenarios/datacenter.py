"""The Section VI case study: a datacenter routing attack.

A Clos/fat-tree pod slice carries ICMP echo traffic from ``vm1`` to the
firewall ``fw1`` over *tunnel 2*: ``vm1 — edge2 — agg1 — edge1 — fw1``.
Routing is on MAC destination addresses only, as in the paper.

Three scenarios, exactly as Section VI runs them:

1. **baseline** — all switches benign; 10 echo cycles complete, and two
   screening methods in parallel (tcpdump-style taps on every interface
   plus flow-table counters) confirm no test packet strays off the path.
2. **attack** — the aggregation switch mirrors fw1-bound packets to a
   core switch (which forwards the copies on to fw1) and drops every
   packet addressed to vm1: 20 requests arrive at fw1, 0 responses
   arrive at vm1.
3. **protected** — the malicious aggregation switch is placed inside a
   NetCo shielded router with two benign replicas: the mirrored copies
   reach the compare but never win a majority, responses arrive with
   2-of-3 votes, and all 10 cycles complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.adversary.behaviors import match_dst_mac
from repro.adversary.mirror import MirrorAndDropBehavior
from repro.core.compare import CompareConfig
from repro.core.deployment import ShieldedRouter, ShieldedRouterParams, build_shielded_router
from repro.net.host import Host
from repro.net.packet import Icmp, Packet
from repro.net.topology import Network
from repro.openflow.actions import Output
from repro.openflow.match import Match
from repro.obs.spans import PacketTracer
from repro.openflow.switch import OpenFlowSwitch
from repro.traffic.ping import Pinger

#: nodes on the benign path of tunnel 2 (hosts included)
BENIGN_PATH = ("vm1", "edge2", "agg1", "edge1", "fw1")


@dataclass
class ScreeningReport:
    """What the two screening methods observed."""

    #: test packets seen per node (tap counts, requests + responses)
    per_node: Dict[str, int] = field(default_factory=dict)
    #: test packets observed at nodes off the benign path
    strays: int = 0
    #: names of off-path nodes that saw test packets
    stray_nodes: List[str] = field(default_factory=list)


@dataclass
class CaseStudyResult:
    """Outcome of one case-study scenario run."""

    scenario: str
    requests_sent: int
    requests_at_fw1: int
    responses_at_vm1: int
    screening: ScreeningReport
    #: the same screening, derived from packet-lifecycle spans instead of
    #: taps; the two must agree (tested) — spans are the cheaper substrate
    #: because they can be sampled
    span_screening: Optional[ScreeningReport] = None
    compare_released: int = 0
    compare_expired_unreleased: int = 0
    single_source_alarms: int = 0

    @property
    def cycles_completed(self) -> int:
        return self.responses_at_vm1


class DatacenterCaseStudy:
    """Builder/runner for the three Section VI scenarios."""

    def __init__(self, seed: int = 0, echo_count: int = 10) -> None:
        self.seed = seed
        self.echo_count = echo_count

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def _base_network(self) -> Network:
        net = Network(seed=self.seed)
        for name in ("edge1", "edge2", "agg2", "core1", "core2"):
            net.add_node(
                OpenFlowSwitch(net.sim, name, trace_bus=net.trace, proc_time=5e-6)
            )
        net.add_host("fw1", stack_delay=10e-6)
        net.add_host("vm1", stack_delay=10e-6)
        net.add_host("vm2", stack_delay=10e-6)
        link = dict(rate_bps=1e9, delay=2e-6)
        net.connect(net.node("edge1"), net.host("fw1"), **link)
        net.connect(net.node("edge2"), net.host("vm1"), **link)
        net.connect(net.node("edge2"), net.host("vm2"), **link)
        # agg2 connects both edges (the pod's second aggregation layer)
        net.connect(net.node("agg2"), net.node("edge1"), **link)
        net.connect(net.node("agg2"), net.node("edge2"), **link)
        net.connect(net.node("core2"), net.node("agg2"), **link)
        return net

    def _wire_plain_agg1(self, net: Network) -> OpenFlowSwitch:
        agg1 = OpenFlowSwitch(net.sim, "agg1", trace_bus=net.trace, proc_time=5e-6)
        net.add_node(agg1)
        link = dict(rate_bps=1e9, delay=2e-6)
        net.connect(agg1, net.node("edge1"), **link)
        net.connect(agg1, net.node("edge2"), **link)
        net.connect(net.node("core1"), agg1, **link)
        return agg1

    def _install_routes(self, net: Network, agg1_name: str = "agg1") -> None:
        """MAC-destination routes for tunnel 2 plus the core's downlinks."""
        fw1, vm1 = net.host("fw1"), net.host("vm1")

        def route(node_name: str, dst_host: Host, next_hop: str) -> None:
            node = net.node(node_name)
            assert isinstance(node, OpenFlowSwitch)
            node.install(
                Match(dl_dst=dst_host.mac),
                [Output(net.port_no_between(node_name, next_hop))],
                priority=10,
            )

        # toward fw1 (tunnel 2 forward direction)
        route("edge2", fw1, agg1_name)
        route("edge1", fw1, "fw1")
        # the core forwards fw1-bound packets back down through agg1 —
        # this is how the mirrored copies reach fw1 in the attack run
        route("core1", fw1, agg1_name)
        route("agg2", fw1, "edge1")
        route("core2", fw1, "agg2")
        # toward vm1 (tunnel 2 reverse direction)
        route("edge2", vm1, "vm1")
        route("edge1", vm1, agg1_name)
        route("core1", vm1, agg1_name)
        route("agg2", vm1, "edge2")
        route("core2", vm1, "agg2")

    def _install_agg1_routes(self, net: Network, agg1: OpenFlowSwitch) -> None:
        fw1, vm1 = net.host("fw1"), net.host("vm1")
        agg1.install(
            Match(dl_dst=fw1.mac),
            [Output(net.port_no_between("agg1", "edge1"))],
            priority=10,
        )
        agg1.install(
            Match(dl_dst=vm1.mac),
            [Output(net.port_no_between("agg1", "edge2"))],
            priority=10,
        )

    # ------------------------------------------------------------------
    # screening (tcpdump taps + flow counters)
    # ------------------------------------------------------------------
    def _install_taps(self, net: Network, counters: Dict[str, int]) -> None:
        def tap_for(node_name: str):
            def tap(packet: Packet) -> None:
                if isinstance(packet.l4, Icmp):
                    counters[node_name] = counters.get(node_name, 0) + 1

            return tap

        for name, node in net.nodes.items():
            for port in node.ports.values():
                port.taps.append(tap_for(name))

    @staticmethod
    def _screening(counters: Dict[str, int], benign: tuple) -> ScreeningReport:
        report = ScreeningReport(per_node=dict(counters))
        for node_name, count in counters.items():
            if node_name not in benign and count > 0:
                report.strays += count
                report.stray_nodes.append(node_name)
        report.stray_nodes.sort()
        return report

    @staticmethod
    def screening_from_spans(tracer: PacketTracer, benign: tuple) -> ScreeningReport:
        """The tap screening, re-expressed over packet-lifecycle spans.

        ``span.hop`` fires on every port delivery before the
        administrative block is applied — exactly where the tcpdump
        taps sit — so counting ICMP hop events per node reproduces the
        tap counters for every traced packet.
        """
        counters: Dict[str, int] = {}
        for spans in tracer.trajectories().values():
            for record in spans:
                if record.topic == "span.hop" and record.data.get("kind") == "Icmp":
                    counters[record.source] = counters.get(record.source, 0) + 1
        return DatacenterCaseStudy._screening(counters, benign)

    # ------------------------------------------------------------------
    # the three scenario runs
    # ------------------------------------------------------------------
    def run_baseline(self) -> CaseStudyResult:
        net = self._base_network()
        agg1 = self._wire_plain_agg1(net)
        self._install_routes(net)
        self._install_agg1_routes(net, agg1)
        return self._run_echo_test(net, scenario="baseline", benign=BENIGN_PATH)

    def run_attack(self) -> CaseStudyResult:
        net = self._base_network()
        agg1 = self._wire_plain_agg1(net)
        self._install_routes(net)
        self._install_agg1_routes(net, agg1)
        fw1, vm1 = net.host("fw1"), net.host("vm1")
        behavior = MirrorAndDropBehavior(
            mirror_port=net.port_no_between("agg1", "core1"),
            mirror_selector=match_dst_mac(fw1.mac),
            drop_selector=match_dst_mac(vm1.mac),
            mirror_in_ports=frozenset({net.port_no_between("agg1", "edge2")}),
        )
        behavior.attach(agg1)
        result = self._run_echo_test(net, scenario="attack", benign=BENIGN_PATH)
        return result

    def run_protected(
        self, malicious_replica: int = 2, k: int = 3
    ) -> CaseStudyResult:
        net = self._base_network()
        shield = build_shielded_router(
            net,
            "agg1",
            params=ShieldedRouterParams(
                k=k,
                compare=CompareConfig(k=k, proc_time=5e-6, buffer_timeout=2e-3),
            ),
        )
        p_edge1 = shield.attach_neighbor(net.node("edge1"), rate_bps=1e9, delay=2e-6)
        p_edge2 = shield.attach_neighbor(net.node("edge2"), rate_bps=1e9, delay=2e-6)
        p_core1 = shield.attach_neighbor(net.node("core1"), rate_bps=1e9, delay=2e-6)
        self._install_routes(net, agg1_name="agg1_e")
        fw1, vm1 = net.host("fw1"), net.host("vm1")
        shield.install_mac_route(fw1.mac, p_edge1)
        shield.install_mac_route(vm1.mac, p_edge2)

        # The compromised replica mounts the same mirror+drop attack; its
        # "port to the core switch" is its claim-link for that egress.
        replica = shield.replica(malicious_replica)
        mirror_port = self._replica_claim_port(shield, malicious_replica, p_core1)
        behavior = MirrorAndDropBehavior(
            mirror_port=mirror_port,
            mirror_selector=match_dst_mac(fw1.mac),
            drop_selector=match_dst_mac(vm1.mac),
        )
        behavior.attach(replica)

        benign = BENIGN_PATH + ("agg1_e", "agg1_r0", "agg1_r1", "agg1_r2", "agg1_h3")
        result = self._run_echo_test(net, scenario="protected", benign=benign)
        core = shield.compare_core
        result.compare_released = core.stats.released
        result.compare_expired_unreleased = core.stats.expired_unreleased
        result.single_source_alarms = core.alarms.count("single_source_packet")
        return result

    @staticmethod
    def _replica_claim_port(
        shield: ShieldedRouter, replica_index: int, external_port: int
    ) -> int:
        return shield._replica_port_for_claim[external_port][replica_index]

    # ------------------------------------------------------------------
    def _run_echo_test(
        self, net: Network, scenario: str, benign: tuple
    ) -> CaseStudyResult:
        counters: Dict[str, int] = {}
        self._install_taps(net, counters)
        tracer = PacketTracer(net.trace, sample_rate=1.0)
        tracer.attach(net)
        fw1, vm1 = net.host("fw1"), net.host("vm1")
        requests_at_fw1 = [0]

        original_responder = fw1._echo_responder

        def counting_responder(packet: Packet) -> None:
            icmp = packet.l4
            if isinstance(icmp, Icmp) and icmp.is_echo_request:
                requests_at_fw1[0] += 1
            original_responder(packet)

        fw1.bind_icmp(counting_responder)

        pinger = Pinger(vm1, dst_mac=fw1.mac, dst_ip=fw1.ip)
        pinger.run(self.echo_count, interval=1e-3)
        net.run(until=net.sim.now + self.echo_count * 1e-3 + 30e-3)

        return CaseStudyResult(
            scenario=scenario,
            requests_sent=pinger.sent,
            requests_at_fw1=requests_at_fw1[0],
            responses_at_vm1=pinger.received,
            screening=self._screening(counters, benign),
            span_screening=self.screening_from_spans(tracer, benign),
        )
