"""Ready-made evaluation scenarios (Sections V, VI and VII)."""

from repro.scenarios.datacenter import (
    BENIGN_PATH,
    CaseStudyResult,
    DatacenterCaseStudy,
    ScreeningReport,
)
from repro.scenarios.ctrlplane import (
    CtrlParams,
    CtrlTestbed,
    build_ctrl_testbed,
)
from repro.scenarios.registry import (
    ScenarioSpec,
    figure_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
    table1_scenarios,
)
from repro.scenarios.testbed import (
    Testbed,
    TestbedParams,
    VARIANTS,
    build_testbed,
)
from repro.scenarios.transport import (
    TransportCombiner,
    build_transport_combiner,
    build_transport_scenario,
)
from repro.scenarios.virtualized import (
    VirtualizedScenario,
    build_virtualized_scenario,
)

__all__ = [
    "BENIGN_PATH",
    "CaseStudyResult",
    "CtrlParams",
    "CtrlTestbed",
    "DatacenterCaseStudy",
    "ScreeningReport",
    "ScenarioSpec",
    "figure_scenarios",
    "get_scenario",
    "register_scenario",
    "scenario_names",
    "table1_scenarios",
    "Testbed",
    "TestbedParams",
    "VARIANTS",
    "build_ctrl_testbed",
    "build_testbed",
    "TransportCombiner",
    "build_transport_combiner",
    "build_transport_scenario",
    "VirtualizedScenario",
    "build_virtualized_scenario",
]
