"""Regenerate ``benchmarks/transport_baseline.json``.

The file pins what the DES backend produced *before* the transport-layer
refactor: 24 seeds of the ``crash_restart`` chaos record (flow counters,
fault timeline, quarantine transitions, alarms, compare stats) plus two
seeds of the instrumented fig5-style RunReport (records, spans, metrics).

``tests/test_transport_layer.py`` replays the same workloads through the
current code and asserts every *baseline* field is still bit-identical —
new fields may appear (counters grow over PRs), existing ones may not
drift.  Regenerate only when an intentional behaviour change is made,
and say so in the commit message::

    PYTHONPATH=src python scripts/gen_transport_baseline.py
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.tasks import chaos_run  # noqa: E402
from repro.chaos.schedule import builtin_battery  # noqa: E402
from repro.obs.summary import build_run_report  # noqa: E402

CHAOS_SEEDS = range(24)
CHAOS_DURATION = 0.03
OBS_SEEDS = (1, 7)

OUT = os.path.join(os.path.dirname(__file__), "..", "benchmarks",
                   "transport_baseline.json")


def main() -> None:
    schedule = builtin_battery()["crash_restart"].to_dict()
    baseline = {
        "workloads": {
            "chaos": {
                "schedule": "crash_restart",
                "variant": "central3",
                "duration": CHAOS_DURATION,
            },
            "obs": {"quick": True},
        },
        "chaos": {},
        "obs": {},
    }
    for seed in CHAOS_SEEDS:
        record = chaos_run(
            schedule, seed, variant="central3", duration=CHAOS_DURATION
        )
        baseline["chaos"][str(seed)] = record
        print(f"chaos seed {seed}: sent={record['sent']} "
              f"received={record['received']} alarms={record['alarms']}")
    for seed in OBS_SEEDS:
        report, _runs = build_run_report(quick=True, seed=seed)
        baseline["obs"][str(seed)] = report.to_dict()
        print(f"obs seed {seed}: {len(report.metrics)} metrics")
    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump(baseline, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.normpath(OUT)}")


if __name__ == "__main__":
    main()
