"""Ad-hoc equivalence harness: train=1 vs train=N must be bit-identical.

Compares the full UdpFlowResult plus every data-plane counter that feeds
the figure records, across variants / seeds / rates.  Dev tool — the
checked-in property tests (tests/test_batch_equivalence.py) cover the
same ground with chaos schedules.
"""
import sys

sys.path.insert(0, "src")

from dataclasses import replace

from repro.scenarios.testbed import TestbedParams, build_testbed
from repro.traffic.iperf import run_udp_flow


def run_once(variant, seed, rate, train, duration=0.04):
    params = TestbedParams(batch_train=train, seed=seed)
    tb = build_testbed(variant, params=params)
    res = run_udp_flow(
        tb.path(), rate_bps=rate, duration=duration,
        send_cost=params.udp_send_cost,
    )
    sig = {
        "flow": (res.sent, res.received_unique, res.duplicates, res.reordered,
                 res.jitter_s),
        "links": [],
        "switches": {},
    }
    for link in tb.network.links:
        for name, stats, depth in link.directions():
            sig["links"].append((name, tuple(sorted(stats.as_dict().items())), depth))
    for name, node in sorted(tb.network.nodes.items()):
        if hasattr(node, "stats") and hasattr(node.stats, "as_dict"):
            sig["switches"][name] = tuple(sorted(node.stats.as_dict().items()))
        if hasattr(node, "estats"):
            sig["switches"][name + ".e"] = tuple(sorted(node.estats.as_dict().items()))
        if hasattr(node, "table"):
            sig["switches"][name + ".t"] = tuple(sorted(node.table.lookup_stats().items()))
    core = tb.chain.compare_core
    if core is not None:
        sig["compare"] = tuple(sorted(core.stats.as_dict().items()))
    for h in (tb.h1, tb.h2):
        sig["switches"][h.name + ".h"] = (h.rx_dropped, h.rx_foreign, h._recv_queued)
    return sig


def diff(a, b, prefix=""):
    out = []
    if isinstance(a, dict):
        for k in sorted(set(a) | set(b)):
            out += diff(a.get(k), b.get(k), f"{prefix}.{k}")
    elif a != b:
        out.append(f"{prefix}: {a!r} != {b!r}")
    return out


VARIANTS = ["linespeed", "central3", "central5", "pox3", "dup3", "dup5"]

if __name__ == "__main__":
    train = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    variants = sys.argv[2].split(",") if len(sys.argv) > 2 else VARIANTS
    seeds = [int(s) for s in sys.argv[3].split(",")] if len(sys.argv) > 3 else [1, 2]
    rates = [80e6, 300e6]
    failures = 0
    for variant in variants:
        for seed in seeds:
            for rate in rates:
                a = run_once(variant, seed, rate, 1)
                b = run_once(variant, seed, rate, train)
                d = diff(a, b)
                tag = f"{variant} seed={seed} rate={rate/1e6:.0f}M"
                if d:
                    failures += 1
                    print(f"FAIL {tag}")
                    for line in d[:12]:
                        print("   ", line)
                else:
                    print(f"ok   {tag}  sent={a['flow'][0]} recv={a['flow'][1]}")
    sys.exit(1 if failures else 0)
